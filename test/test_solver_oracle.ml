(* Differential oracle for the exact solvers.

   Random small problems are solved twice: once by the production code
   ({!Ipet_lp.Simplex}, {!Ipet_lp.Ilp}) and once by a brute-force method
   whose correctness is self-evident — exact-rational vertex enumeration
   for LPs, exhaustive integer-box enumeration for ILPs. Every generated
   problem carries a box constraint [Σ xᵢ <= M], so the feasible region is
   bounded (and, lying in the non-negative orthant, pointed): a non-empty
   region always has a vertex and Unbounded is impossible, which is what
   makes the naive oracles complete. *)

module L = Ipet_lp.Linexpr
module P = Ipet_lp.Lp_problem
module S = Ipet_lp.Simplex
module I = Ipet_lp.Ilp
module Rat = Ipet_num.Rat

(* --- random problem generation ----------------------------------------- *)

type shape = {
  problem : P.t;
  gvars : string list;  (** in generation order, length 2 or 3 *)
  box : int;  (** every variable is within [0..box] at any feasible point *)
}

let gen_problem rng =
  let n = 2 + Random.State.int rng 2 in
  let gvars = List.init n (fun i -> Printf.sprintf "x%d" (i + 1)) in
  let coeff () = Random.State.int rng 7 - 3 in
  let lin const =
    List.fold_left
      (fun acc v -> L.add acc (L.var ~coeff:(Rat.of_int (coeff ())) v))
      (L.of_int const) gvars
  in
  let rel () =
    match Random.State.int rng 10 with
    | 0 -> P.Eq
    | k when k < 5 -> P.Le
    | _ -> P.Ge
  in
  let n_cons = 2 + Random.State.int rng 3 in
  let random_cons =
    List.init n_cons (fun _ ->
        P.constr (lin (Random.State.int rng 13 - 6)) (rel ()))
  in
  let box = 1 + Random.State.int rng 7 in
  let box_cons =
    P.le
      (List.fold_left (fun acc v -> L.add acc (L.var v)) L.zero gvars)
      (L.of_int box)
  in
  let objective = lin 0 in
  let direction =
    if Random.State.bool rng then P.Maximize else P.Minimize
  in
  { problem = P.make direction objective (box_cons :: random_cons); gvars; box }

(* --- exact Gaussian elimination ---------------------------------------- *)

(* Solve the square system [m * x = rhs]; [None] when singular. *)
let gauss_solve (m : Rat.t array array) (rhs : Rat.t array) =
  let n = Array.length rhs in
  let a = Array.init n (fun i -> Array.append (Array.copy m.(i)) [| rhs.(i) |]) in
  let singular = ref false in
  for col = 0 to n - 1 do
    if not !singular then begin
      let pivot = ref None in
      for i = n - 1 downto col do
        if not (Rat.is_zero a.(i).(col)) then pivot := Some i
      done;
      (match !pivot with
       | None -> singular := true
       | Some p ->
         let tmp = a.(col) in
         a.(col) <- a.(p);
         a.(p) <- tmp;
         let inv = Rat.inv a.(col).(col) in
         for j = col to n do
           a.(col).(j) <- Rat.mul inv a.(col).(j)
         done;
         for i = 0 to n - 1 do
           if i <> col && not (Rat.is_zero a.(i).(col)) then begin
             let f = a.(i).(col) in
             for j = col to n do
               a.(i).(j) <- Rat.sub a.(i).(j) (Rat.mul f a.(col).(j))
             done
           end
         done)
    end
  done;
  if !singular then None else Some (Array.init n (fun i -> a.(i).(n)))

(* --- brute-force LP: vertex enumeration -------------------------------- *)

(* Candidate hyperplanes: each constraint taken at equality, plus each
   coordinate plane xᵢ = 0. Any vertex of the feasible region is the
   unique intersection of [n] of them. *)
let brute_force_lp { problem; gvars; _ } =
  let n = List.length gvars in
  let vars = Array.of_list gvars in
  let planes =
    (* (coefficient row, rhs) encoding Σ aᵢ xᵢ = rhs *)
    List.map
      (fun (c : P.constr) ->
        ( Array.map (fun v -> L.coeff c.P.expr v) vars,
          Rat.neg (L.constant c.P.expr) ))
      problem.P.constraints
    @ List.init n (fun i ->
          (Array.init n (fun j -> if i = j then Rat.one else Rat.zero), Rat.zero))
  in
  let planes = Array.of_list planes in
  let best = ref None in
  let consider point =
    let env x =
      let rec find i =
        if i >= n then Rat.zero
        else if vars.(i) = x then point.(i)
        else find (i + 1)
      in
      find 0
    in
    if P.feasible env problem then begin
      let value = L.eval env problem.P.objective in
      let better =
        match !best with
        | None -> true
        | Some (b, _) -> (
          match problem.P.direction with
          | P.Maximize -> Rat.compare value b > 0
          | P.Minimize -> Rat.compare value b < 0)
      in
      if better then best := Some (value, Array.copy point)
    end
  in
  (* all n-subsets of planes *)
  let rec choose start chosen =
    if List.length chosen = n then begin
      let rows = List.rev chosen in
      let m = Array.of_list (List.map (fun (row, _) -> row) rows) in
      let rhs = Array.of_list (List.map snd rows) in
      match gauss_solve m rhs with
      | Some point -> consider point
      | None -> ()
    end
    else
      for i = start to Array.length planes - 1 do
        choose (i + 1) (planes.(i) :: chosen)
      done
  in
  choose 0 [];
  !best

let prop_simplex_matches_vertex_enumeration =
  QCheck.Test.make ~name:"simplex agrees with exact vertex enumeration"
    ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0x5eed |] in
      let shape = gen_problem rng in
      let brute = brute_force_lp shape in
      match (S.solve shape.problem, brute) with
      | S.Infeasible, None -> true
      | S.Infeasible, Some _ ->
        QCheck.Test.fail_report "simplex says infeasible, a vertex exists"
      | S.Optimal _, None ->
        QCheck.Test.fail_report "simplex says optimal, no feasible vertex"
      | S.Unbounded, _ ->
        QCheck.Test.fail_report "unbounded on a box-bounded problem"
      | S.Optimal { value; assignment }, Some (best, _) ->
        let env = S.assignment_env assignment in
        if not (P.feasible env shape.problem) then
          QCheck.Test.fail_report "simplex assignment infeasible"
        else if not (Rat.equal (L.eval env shape.problem.P.objective) value)
        then QCheck.Test.fail_report "assignment does not achieve the value"
        else if not (Rat.equal value best) then
          QCheck.Test.fail_report
            (Printf.sprintf "optimum mismatch: simplex %s, enumeration %s"
               (Rat.to_string value) (Rat.to_string best))
        else true)

(* --- brute-force ILP: integer-box enumeration --------------------------- *)

(* The box constraint gives xᵢ ∈ [0..M] at any feasible point, so the
   integer optimum is found by trying every point of the box. *)
let brute_force_ilp { problem; gvars; box } =
  let vars = Array.of_list gvars in
  let n = Array.length vars in
  let point = Array.make n Rat.zero in
  let best = ref None in
  let env x =
    let rec find i =
      if i >= n then Rat.zero
      else if vars.(i) = x then point.(i)
      else find (i + 1)
    in
    find 0
  in
  let rec enumerate i =
    if i = n then begin
      if P.feasible env problem then begin
        let value = L.eval env problem.P.objective in
        let better =
          match !best with
          | None -> true
          | Some b -> (
            match problem.P.direction with
            | P.Maximize -> Rat.compare value b > 0
            | P.Minimize -> Rat.compare value b < 0)
        in
        if better then best := Some value
      end
    end
    else
      for k = 0 to box do
        point.(i) <- Rat.of_int k;
        enumerate (i + 1)
      done
  in
  enumerate 0;
  !best

let check_ilp_against_enumeration ~presolve shape brute =
  match (I.solve ~presolve shape.problem, brute) with
  | I.Infeasible _, None -> true
  | I.Infeasible _, Some _ ->
    QCheck.Test.fail_report "ILP says infeasible, an integer point exists"
  | I.Optimal _, None ->
    QCheck.Test.fail_report "ILP says optimal, no feasible integer point"
  | I.Unbounded _, _ ->
    QCheck.Test.fail_report "ILP unbounded on a box-bounded problem"
  | I.Optimal { value; assignment; _ }, Some best ->
    let env = S.assignment_env assignment in
    if not (List.for_all (fun (_, q) -> Rat.is_integer q) assignment) then
      QCheck.Test.fail_report "ILP assignment not integral"
    else if not (P.feasible env shape.problem) then
      QCheck.Test.fail_report "ILP assignment infeasible"
    else if not (Rat.equal (L.eval env shape.problem.P.objective) value) then
      QCheck.Test.fail_report "ILP assignment does not achieve the value"
    else if not (Rat.equal value best) then
      QCheck.Test.fail_report
        (Printf.sprintf "ILP optimum mismatch: solver %s, enumeration %s"
           (Rat.to_string value) (Rat.to_string best))
    else true

let prop_ilp_matches_box_enumeration =
  QCheck.Test.make ~name:"branch-and-bound agrees with integer enumeration"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0x11e9 |] in
      let shape = gen_problem rng in
      let brute = brute_force_ilp shape in
      check_ilp_against_enumeration ~presolve:true shape brute
      && check_ilp_against_enumeration ~presolve:false shape brute)

(* --- hand-picked solver stress cases ------------------------------------ *)

module Sparse = Ipet_lp.Sparse
module Revised = Ipet_lp.Revised
module Dense = Ipet_lp.Dense

let rat a b = Rat.of_ints a b

let check_optimal name expected = function
  | S.Optimal { value; assignment } ->
    Alcotest.(check bool)
      (name ^ ": optimum")
      true
      (Rat.equal value expected);
    let env = S.assignment_env assignment in
    env
  | S.Infeasible -> Alcotest.fail (name ^ ": unexpectedly infeasible")
  | S.Unbounded -> Alcotest.fail (name ^ ": unexpectedly unbounded")

(* Beale's classic cycling example: maximally degenerate (every ratio test
   at the origin ties at zero), the textbook witness that Dantzig pricing
   cycles. Bland's rule — which both solvers implement — must terminate at
   z* = 1/20, x = (1/25, 0, 1, 0). *)
let test_beale_degenerate () =
  let x1 = "x1" and x2 = "x2" and x3 = "x3" and x4 = "x4" in
  let lin l =
    List.fold_left
      (fun acc (c, v) -> L.add acc (L.var ~coeff:c v))
      L.zero l
  in
  let problem =
    P.make P.Maximize
      (lin [ (rat 3 4, x1); (Rat.of_int (-150), x2); (rat 1 50, x3);
             (Rat.of_int (-6), x4) ])
      [ P.le
          (lin [ (rat 1 4, x1); (Rat.of_int (-60), x2); (rat (-1) 25, x3);
                 (Rat.of_int 9, x4) ])
          L.zero;
        P.le
          (lin [ (rat 1 2, x1); (Rat.of_int (-90), x2); (rat (-1) 50, x3);
                 (Rat.of_int 3, x4) ])
          L.zero;
        P.le (lin [ (Rat.one, x3) ]) (L.of_int 1) ]
  in
  let env = check_optimal "beale" (rat 1 20) (S.solve problem) in
  Alcotest.(check bool) "beale: x1 = 1/25" true (Rat.equal (env x1) (rat 1 25));
  Alcotest.(check bool) "beale: x3 = 1" true (Rat.equal (env x3) Rat.one);
  (* the dense tableau must walk the identical trajectory *)
  (match Dense.solve problem with
   | Dense.Optimal { value; _ } ->
     Alcotest.(check bool) "beale: dense agrees" true (Rat.equal value (rat 1 20))
   | _ -> Alcotest.fail "beale: dense solver disagrees")

(* Linearly dependent rows: the refactorization's elimination must cope
   with a rank-deficient basis candidate set (the duplicate slack rows
   can never both be pivotal). *)
let test_redundant_rows () =
  let lin l =
    List.fold_left
      (fun acc (c, v) -> L.add acc (L.var ~coeff:(Rat.of_int c) v))
      L.zero l
  in
  let problem =
    P.make P.Maximize
      (lin [ (3, "x"); (2, "y") ])
      [ P.le (lin [ (1, "x"); (1, "y") ]) (L.of_int 5);
        P.le (lin [ (1, "x"); (1, "y") ]) (L.of_int 5);
        P.le (lin [ (2, "x"); (2, "y") ]) (L.of_int 10);
        P.eq (lin [ (1, "x"); (-1, "y") ]) (L.of_int 1);
        P.eq (lin [ (2, "x"); (-2, "y") ]) (L.of_int 2) ]
  in
  (* x - y = 1, x + y = 5 -> (3, 2), z = 13 *)
  let env = check_optimal "redundant" (Rat.of_int 13) (S.solve problem) in
  Alcotest.(check bool) "redundant: x = 3" true (Rat.equal (env "x") (Rat.of_int 3));
  Alcotest.(check bool) "redundant: y = 2" true (Rat.equal (env "y") (Rat.of_int 2))

(* Columns that appear in no constraint: an unfavourable one must stay at
   its lower bound, a favourable one makes the LP unbounded. *)
let test_empty_column () =
  let lin l =
    List.fold_left
      (fun acc (c, v) -> L.add acc (L.var ~coeff:(Rat.of_int c) v))
      L.zero l
  in
  let bounded =
    P.make P.Maximize
      (lin [ (5, "x"); (-2, "loose") ])
      [ P.le (lin [ (1, "x") ]) (L.of_int 4) ]
  in
  let env = check_optimal "empty-column" (Rat.of_int 20) (S.solve bounded) in
  Alcotest.(check bool) "empty-column: loose stays 0" true
    (Rat.is_zero (env "loose"));
  let unbounded =
    P.make P.Maximize
      (lin [ (5, "x"); (2, "loose") ])
      [ P.le (lin [ (1, "x") ]) (L.of_int 4) ]
  in
  (match S.solve unbounded with
   | S.Unbounded -> ()
   | _ -> Alcotest.fail "empty-column: favourable free column not unbounded")

(* --- warm-started dual vs cold primal on random B&B children ------------ *)

(* The branch-and-bound handshake in one property: solve a random problem
   cold, then for each branching-style child (one variable's upper bound
   tightened below its optimal value) check the dual simplex warm-started
   from the parent basis agrees verdict-for-verdict and value-for-value
   with a cold bounded primal solve. *)
let prop_warm_dual_matches_cold_primal =
  QCheck.Test.make ~name:"warm dual re-solve agrees with cold primal"
    ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xd0a1 |] in
      let shape = gen_problem rng in
      (* normalize to maximization the way Simplex.solve does *)
      let problem = shape.problem in
      let vars = P.variables problem in
      let inst = Sparse.build ~vars problem in
      let obj =
        match problem.P.direction with
        | P.Maximize -> problem.P.objective
        | P.Minimize -> L.neg problem.P.objective
      in
      let nstruct = inst.Sparse.nstruct in
      let cost = Array.make nstruct Rat.zero in
      Array.iteri (fun i v -> cost.(i) <- L.coeff obj v) inst.Sparse.vars;
      match (Revised.solve_primal inst ~cost).Revised.verdict with
      | Revised.Infeasible -> true  (* no parent basis to warm-start from *)
      | Revised.Unbounded ->
        QCheck.Test.fail_report "unbounded on a box-bounded problem"
      | Revised.Optimal parent ->
        let zeros = Array.make nstruct Rat.zero in
        let check_child j =
          if Rat.compare parent.Revised.xstruct.(j) Rat.one < 0 then true
          else begin
            let upper = Array.make nstruct None in
            upper.(j) <-
              Some (Rat.of_bigint (Rat.floor
                      (Rat.sub parent.Revised.xstruct.(j) Rat.one)));
            let cold = Revised.solve_primal ~upper inst ~cost in
            let warm =
              match
                Revised.solve_dual inst ~cost ~lower:zeros ~upper
                  ~warm:parent.Revised.snapshot
              with
              | run -> Some run.Revised.verdict
              | exception Revised.Stuck -> None
            in
            match (warm, cold.Revised.verdict) with
            | None, _ ->
              (* dual gave up; the production fallback re-solves cold *)
              true
            | Some (Revised.Optimal w), Revised.Optimal c ->
              Rat.equal w.Revised.value c.Revised.value
              || QCheck.Test.fail_report
                   (Printf.sprintf "child %d: warm %s, cold %s" j
                      (Rat.to_string w.Revised.value)
                      (Rat.to_string c.Revised.value))
            | Some Revised.Infeasible, Revised.Infeasible -> true
            | Some _, _ ->
              QCheck.Test.fail_report
                (Printf.sprintf "child %d: warm/cold verdict mismatch" j)
          end
        in
        let ok = ref true in
        for j = 0 to nstruct - 1 do
          ok := !ok && check_child j
        done;
        !ok)

(* The rewritten solver must match the historical dense tableau not just
   in value but in the witness assignment — the trajectory-parity claim
   golden reports rest on. *)
let prop_revised_matches_dense =
  QCheck.Test.make ~name:"revised simplex replays the dense trajectory"
    ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xde45 |] in
      let shape = gen_problem rng in
      match (S.solve shape.problem, Dense.solve shape.problem) with
      | S.Infeasible, Dense.Infeasible -> true
      | S.Unbounded, Dense.Unbounded -> true
      | S.Optimal { value = rv; assignment = ra },
        Dense.Optimal { value = dv; assignment = da } ->
        (Rat.equal rv dv
         || QCheck.Test.fail_report
              (Printf.sprintf "value mismatch: revised %s, dense %s"
                 (Rat.to_string rv) (Rat.to_string dv)))
        && (ra = da
            || QCheck.Test.fail_report "witness assignment mismatch")
      | _ -> QCheck.Test.fail_report "verdict mismatch")

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simplex_matches_vertex_enumeration; prop_ilp_matches_box_enumeration;
      prop_warm_dual_matches_cold_primal; prop_revised_matches_dense ]
  @ [ Alcotest.test_case "Beale degenerate LP terminates (Bland)" `Quick
        test_beale_degenerate;
      Alcotest.test_case "redundant rows are harmless" `Quick
        test_redundant_rows;
      Alcotest.test_case "empty columns: idle vs unbounded" `Quick
        test_empty_column ]
