(* Automatic loop-bound inference tests, including the strongest soundness
   property in the repo: random programs with counted loops are analyzed
   with *inferred* bounds only, and the estimated bound must enclose the
   simulated time for random inputs. *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module V = Ipet_isa.Value
module Autobound = Ipet.Autobound
module Annotation = Ipet.Annotation
module Analysis = Ipet.Analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let infer src = Autobound.infer (fst (Frontend.parse_and_check src))

let the_bound = function
  | [ (b : Annotation.t) ] -> (b.Annotation.lo, b.Annotation.hi)
  | bs -> Alcotest.fail (Printf.sprintf "expected 1 bound, got %d" (List.length bs))

let test_simple_counted () =
  let lo, hi =
    the_bound (infer "int f() { int i; int s; s = 0; \
                      for (i = 0; i < 10; i = i + 1) s = s + i; return s; }")
  in
  check_int "lo" 10 lo;
  check_int "hi" 10 hi

let test_le_and_stride () =
  let lo, hi =
    the_bound (infer "int f() { int i; int s; s = 0; \
                      for (i = 2; i <= 17; i = i + 3) s = s + i; return s; }")
  in
  (* i = 2, 5, 8, 11, 14, 17 -> 6 iterations *)
  check_int "lo" 6 lo;
  check_int "hi" 6 hi

let test_zero_trip () =
  let lo, hi =
    the_bound (infer "int f() { int i; int s; s = 0; \
                      for (i = 5; i < 5; i = i + 1) s = s + 1; return s; }")
  in
  check_int "lo" 0 lo;
  check_int "hi" 0 hi

let test_break_keeps_upper_only () =
  let lo, hi =
    the_bound
      (infer "int f(int n) { int i; int s; s = 0; \
              for (i = 0; i < 8; i = i + 1) { if (i == n) break; s = s + 1; } \
              return s; }")
  in
  check_int "lo relaxed to 0" 0 lo;
  check_int "hi kept" 8 hi

(* a body that can neither fall through nor continue never reaches the back
   edge, so the compiled CFG has no loop for a bound to attach to — emitting
   one would be a phantom annotation (fuzz seed 6, first shrunk form) *)
let test_never_iterating_loop_unbounded () =
  check_int "always-break loop gets no bound" 0
    (List.length
       (infer "int f() { int i; \
               for (i = 2; i < 10; i = i + 2) { break; } return i; }"));
  check_int "always-return loop gets no bound" 0
    (List.length
       (infer "int f() { int i; \
               for (i = 0; i < 10; i = i + 1) { return i; } return 0; }"))

(* continue still reaches the back edge, so the bound must be kept *)
let test_continue_keeps_bound () =
  let lo, hi =
    the_bound
      (infer "int f() { int i; int s; s = 0; \
              for (i = 0; i < 5; i = i + 1) { continue; s = s + 1; } \
              return s; }")
  in
  check_int "lo" 5 lo;
  check_int "hi" 5 hi

(* statements after a break/return are unreachable and the compiler drops
   their blocks, so loops inside them must not be inferred either (fuzz
   seed 6, second shrunk form) *)
let test_unreachable_loop_not_inferred () =
  check_int "loop after break not inferred" 0
    (List.length
       (infer "int f() { int i; int j; \
               for (i = 2; i < 10; i = i + 2) { break; \
                 for (j = 1; j < 6; j = j + 3) { i = i + 1; } } \
               return i + j; }"));
  check_int "loop after return not inferred" 0
    (List.length
       (infer "int f() { int j; return 1; \
               for (j = 0; j < 4; j = j + 1) { } return j; }"))

let test_rejects_mutated_induction () =
  check_int "no bound inferred" 0
    (List.length
       (infer "int f() { int i; int s; s = 0; \
               for (i = 0; i < 10; i = i + 1) { s = s + i; i = i + 1; } \
               return s; }"))

let test_rejects_dynamic_bound () =
  check_int "no bound for variable limit" 0
    (List.length
       (infer "int f(int n) { int i; int s; s = 0; \
               for (i = 0; i < n; i = i + 1) s = s + i; return s; }"))

let test_nested_inference () =
  let bounds =
    infer
      "int f() { int i; int j; int s; s = 0;\n\
       for (i = 0; i < 4; i = i + 1)\n\
       for (j = 0; j < 6; j = j + 1)\n\
       s = s + i * j;\n\
       return s; }"
  in
  check_int "two loops" 2 (List.length bounds);
  let counts = List.sort compare (List.map (fun (b : Annotation.t) -> b.Annotation.hi) bounds) in
  check_bool "4 and 6" true (counts = [ 4; 6 ])

let test_inference_matches_simulation () =
  (* end to end: analyze with only inferred bounds; simulate; enclose *)
  let src =
    "int acc;\n\
     int f(int n) {\n\
     int i; int j; int s;\n\
     s = 0;\n\
     for (i = 0; i < 5; i = i + 1) {\n\
     for (j = 0; j < 3; j = j + 1) {\n\
     if (n > j) s = s + i; else s = s - j; } }\n\
     acc = s;\n\
     return s; }\n"
  in
  let compiled = Frontend.compile_string_exn src in
  let loop_bounds = infer src in
  check_int "both loops inferred" 2 (List.length loop_bounds);
  let result =
    Analysis.analyze (Analysis.spec compiled.Compile.prog ~root:"f" ~loop_bounds)
  in
  List.iter
    (fun n ->
      let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
      Interp.flush_cache m;
      ignore (Interp.call m "f" [ V.Vint n ]);
      let t = Interp.cycles m in
      check_bool (Printf.sprintf "n=%d within bound" n) true
        (result.Analysis.bcet.Analysis.cycles <= t
         && t <= result.Analysis.wcet.Analysis.cycles))
    [ -5; 0; 1; 2; 99 ]

(* --- random programs with loops ------------------------------------------ *)

(* random structured programs built from ifs and counted for-loops with
   fresh induction variables; every loop is inferable by construction *)
let random_looped_src seed =
  let st = Random.State.make [| seed |] in
  let buf = Buffer.create 256 in
  let decls = Buffer.create 64 in
  let fresh =
    let k = ref 0 in
    fun () -> incr k; Printf.sprintf "i%d" !k
  in
  let rec stmts depth budget =
    if budget <= 0 then Buffer.add_string buf "s = s + 1;\n"
    else
      for _ = 1 to 1 + Random.State.int st 2 do
        match Random.State.int st (if depth > 2 then 2 else 5) with
        | 0 -> Buffer.add_string buf "s = s + a;\n"
        | 1 -> Buffer.add_string buf "a = a - 1;\n"
        | 2 ->
          Buffer.add_string buf "if (a > 0) {\n";
          stmts (depth + 1) (budget - 1);
          Buffer.add_string buf "} else {\n";
          stmts (depth + 1) (budget - 1);
          Buffer.add_string buf "}\n"
        | _ ->
          let v = fresh () in
          Buffer.add_string decls (Printf.sprintf "int %s;\n" v);
          let count = 1 + Random.State.int st 5 in
          Buffer.add_string buf
            (Printf.sprintf "for (%s = 0; %s < %d; %s = %s + 1) {\n" v v count v v);
          stmts (depth + 1) (budget - 1);
          Buffer.add_string buf "}\n"
      done
  in
  Buffer.add_string buf "s = 0;\n";
  stmts 0 3;
  Buffer.add_string buf "return s;\n}\n";
  "int f(int a) {\nint s;\n" ^ Buffer.contents decls ^ Buffer.contents buf

let prop_inferred_bounds_sound =
  QCheck.Test.make ~name:"inferred bounds make the analysis sound on random loops"
    ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_range (-4) 10))
    (fun (seed, arg) ->
      let src = random_looped_src seed in
      let compiled = Frontend.compile_string_exn src in
      let loop_bounds = infer src in
      let result =
        Analysis.analyze (Analysis.spec compiled.Compile.prog ~root:"f" ~loop_bounds)
      in
      let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
      Interp.flush_cache m;
      ignore (Interp.call m "f" [ V.Vint arg ]);
      let t = Interp.cycles m in
      result.Analysis.bcet.Analysis.cycles <= t
      && t <= result.Analysis.wcet.Analysis.cycles)

let props = List.map QCheck_alcotest.to_alcotest [ prop_inferred_bounds_sound ]

let suite =
  [ ("simple counted loop", `Quick, test_simple_counted);
    ("<= and stride", `Quick, test_le_and_stride);
    ("zero-trip loop", `Quick, test_zero_trip);
    ("break relaxes the lower bound", `Quick, test_break_keeps_upper_only);
    ("never-iterating loop unbounded", `Quick, test_never_iterating_loop_unbounded);
    ("continue keeps the bound", `Quick, test_continue_keeps_bound);
    ("unreachable loop not inferred", `Quick, test_unreachable_loop_not_inferred);
    ("mutated induction rejected", `Quick, test_rejects_mutated_induction);
    ("dynamic bound rejected", `Quick, test_rejects_dynamic_bound);
    ("nested loops", `Quick, test_nested_inference);
    ("inference end to end", `Quick, test_inference_matches_simulation) ]
  @ props

(* the full pipeline composed: random looped programs, optimized and
   register-allocated, analyzed with inferred bounds only — soundness must
   survive every transformation *)
let prop_full_pipeline_sound =
  QCheck.Test.make
    ~name:"optimize + regalloc + inferred bounds stay sound" ~count:25
    QCheck.(pair (int_bound 1_000_000) (int_range (-4) 10))
    (fun (seed, arg) ->
      let src = random_looped_src seed in
      match Frontend.compile_string ~optimize:true ~registers:12 src with
      | Error _ -> QCheck.assume_fail ()
      | Ok compiled ->
        let loop_bounds = infer src in
        let result =
          Analysis.analyze
            (Analysis.spec compiled.Compile.prog ~root:"f" ~loop_bounds)
        in
        let m =
          Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data
        in
        Interp.flush_cache m;
        ignore (Interp.call m "f" [ V.Vint arg ]);
        let t = Interp.cycles m in
        result.Analysis.bcet.Analysis.cycles <= t
        && t <= result.Analysis.wcet.Analysis.cycles)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_full_pipeline_sound ]
