(* Observability subsystem tests: span-engine semantics under a
   deterministic clock, disabled-mode no-op behaviour, Chrome trace-event
   export validity, metrics-registry determinism, diagnostics rendering,
   and the profiled simulator's exact cycle attribution. *)

module Obs = Ipet_obs.Obs
module Span = Ipet_obs.Span
module Metrics = Ipet_obs.Metrics
module Sink = Ipet_obs.Sink
module Trace_event = Ipet_obs.Trace_event
module Diag = Ipet_obs.Diag
module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- a minimal JSON reader, enough to validate the exported documents --- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos >= n then '\000' else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 'b' | 'f' -> advance ()
         | 'u' ->
           advance ();
           for _ = 1 to 4 do advance () done;
           Buffer.add_char buf '?'
         | c -> Buffer.add_char buf c; advance ());
        go ()
      | '\000' -> fail "unterminated string"
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while num_char (peek ()) do advance () done;
    if !pos = start then fail "expected number";
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Jnull
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | '"' -> Jstr (parse_string ())
    | '0' .. '9' | '-' -> Jnum (parse_number ())
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Jarr [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); items (v :: acc)
          | ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Jarr (items [])
      end
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((key, v) :: acc)
          | '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Jobj (members [])
      end
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let field name = function
  | Jobj members ->
    (match List.assoc_opt name members with
     | Some v -> v
     | None -> Alcotest.failf "missing field %s" name)
  | _ -> Alcotest.fail "not an object"

let as_arr = function Jarr l -> l | _ -> Alcotest.fail "not an array"
let as_num = function Jnum f -> f | _ -> Alcotest.fail "not a number"
let as_str = function Jstr s -> s | _ -> Alcotest.fail "not a string"

(* --- span engine --------------------------------------------------------- *)

let test_span_nesting () =
  let t = ref 0.0 in
  let engine = Span.create ~clock:(fun () -> !t) () in
  Span.enter engine "outer";
  t := 0.001;
  Span.enter engine ~args:[ ("k", "v") ] "inner";
  t := 0.003;
  Span.exit_ engine;
  t := 0.004;
  Span.exit_ engine;
  check_int "open spans" 0 (Span.depth engine);
  match Span.completed engine with
  | [ inner; outer ] ->
    (* completion order: children precede parents *)
    check_str "inner name" "inner" inner.Span.name;
    check_int "inner start" 1000 inner.Span.start_us;
    check_int "inner dur" 2000 inner.Span.dur_us;
    check_int "inner depth" 1 inner.Span.depth;
    check_bool "inner args" true (inner.Span.args = [ ("k", "v") ]);
    check_str "outer name" "outer" outer.Span.name;
    check_int "outer start" 0 outer.Span.start_us;
    check_int "outer dur" 4000 outer.Span.dur_us;
    check_int "outer depth" 0 outer.Span.depth
  | other -> Alcotest.failf "expected 2 spans, got %d" (List.length other)

let test_span_monotonic_clamp () =
  let t = ref 0.005 in
  let engine = Span.create ~clock:(fun () -> !t) () in
  Span.enter engine "a";
  t := 0.002;
  (* the clock stepped backwards *)
  Span.exit_ engine;
  match Span.completed engine with
  | [ a ] ->
    check_int "clamped start" 0 a.Span.start_us;
    check_int "clamped dur" 0 a.Span.dur_us
  | _ -> Alcotest.fail "expected 1 span"

let test_span_totals () =
  let t = ref 0.0 in
  let engine = Span.create ~clock:(fun () -> !t) () in
  let tick name us =
    Span.enter engine name;
    t := !t +. (float_of_int us /. 1e6);
    Span.exit_ engine
  in
  tick "b" 5;
  tick "a" 3;
  tick "b" 7;
  check_bool "totals sorted and summed" true
    (Span.totals (Span.completed engine) = [ ("a", (1, 3)); ("b", (2, 12)) ])

let test_disabled_noop () =
  Obs.disable ();
  Obs.reset ();
  let ran = ref false in
  let result = Obs.span "invisible" (fun () -> ran := true; 42) in
  check_int "thunk result" 42 result;
  check_bool "thunk ran" true !ran;
  check_int "no spans recorded" 0 (List.length (Obs.spans ()))

let test_enabled_exception_safe () =
  Obs.enable ();
  Obs.reset ();
  (try Obs.span "boom" (fun () -> failwith "expected") with
   | Failure _ -> ());
  let names = List.map (fun c -> c.Span.name) (Obs.spans ()) in
  check_bool "span closed despite the exception" true (names = [ "boom" ]);
  Obs.disable ();
  Obs.reset ()

(* --- trace-event export -------------------------------------------------- *)

let test_trace_event_document () =
  let t = ref 0.0 in
  let engine = Span.create ~clock:(fun () -> !t) () in
  Span.enter engine "outer";
  t := 0.00001;
  Span.enter engine ~args:[ ("set", "0") ] "inner";
  t := 0.00002;
  Span.exit_ engine;
  t := 0.00005;
  Span.exit_ engine;
  let doc = Trace_event.to_string (Span.completed engine) in
  let json = parse_json doc in
  let events = as_arr (field "traceEvents" json) in
  let xs =
    List.filter (fun e -> as_str (field "ph" e) = "X") events
  in
  check_int "one X event per span" 2 (List.length xs);
  (* sorted by start: outer (0) before inner (10) *)
  let names = List.map (fun e -> as_str (field "name" e)) xs in
  check_bool "sorted by start time" true (names = [ "outer"; "inner" ]);
  let ts = List.map (fun e -> as_num (field "ts" e)) xs in
  check_bool "timestamps non-decreasing" true (List.sort compare ts = ts);
  List.iter
    (fun e ->
      check_bool "dur non-negative" true (as_num (field "dur" e) >= 0.0))
    xs;
  (* metadata events identify the process for the viewer *)
  check_bool "has process_name metadata" true
    (List.exists
       (fun e ->
         as_str (field "ph" e) = "M" && as_str (field "name" e) = "process_name")
       events)

(* --- metrics ------------------------------------------------------------- *)

let test_metrics_registry () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~labels:[ ("solver", "wcet") ] "lp.calls" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter accumulates" 5 (Metrics.counter_value c);
  let c' = Metrics.counter r ~labels:[ ("solver", "wcet") ] "lp.calls" in
  Metrics.incr c';
  check_int "same cell through re-resolution" 6 (Metrics.counter_value c);
  Metrics.set_gauge_int r "vars" 10;
  Metrics.set_gauge_int r "vars" 7;
  let h = Metrics.histogram r "solve_s" in
  Metrics.observe h 2.0;
  Metrics.observe h 1.0;
  Metrics.observe h 4.0;
  (match Metrics.items r with
   | [ ("lp.calls", [ ("solver", "wcet") ], Metrics.Counter 6);
       ("solve_s", [], Metrics.Histogram { count = 3; sum = 7.0; min = 1.0; max = 4.0 });
       ("vars", [], Metrics.Gauge 7.0) ] -> ()
   | items -> Alcotest.failf "unexpected items (%d)" (List.length items));
  check_bool "kind mismatch rejected" true
    (try ignore (Metrics.counter r "vars"); false with Invalid_argument _ -> true)

let test_metrics_json_schema_stable () =
  (* two identical instrumented runs must produce byte-identical metrics
     documents *)
  let run () =
    let r = Metrics.create () in
    (* registration order deliberately unsorted *)
    Metrics.set_gauge_int r ~labels:[ ("solver", "wcet") ] "lp.calls" 3;
    Metrics.set_gauge_int r "sim.cycles" 123;
    Metrics.set_gauge_int r ~labels:[ ("solver", "bcet") ] "lp.calls" 2;
    let h = Metrics.histogram r "lp.solve_seconds" in
    Metrics.observe h 0.25;
    Sink.metrics_json ~span_totals:[ ("analysis.wcet", (1, 250)) ] r
  in
  let doc1 = run () and doc2 = run () in
  check_str "identical documents" doc1 doc2;
  let json = parse_json doc1 in
  check_int "version" 1 (int_of_float (as_num (field "version" json)));
  let names =
    List.map (fun m -> as_str (field "name" m)) (as_arr (field "metrics" json))
  in
  check_bool "metrics sorted by name" true (List.sort compare names = names);
  let spans = as_arr (field "spans" json) in
  check_int "span totals present" 1 (List.length spans)

let test_histogram_quantiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "latency" in
  Alcotest.(check (float 0.0)) "empty histogram quantile is 0" 0.0
    (Metrics.quantile h 0.5);
  List.iter (fun v -> Metrics.observe h v) [ 3.0; 1.0; 2.0 ];
  let within tol expected actual =
    Float.abs (actual -. expected) <= tol *. expected
  in
  check_bool "p50 of {1,2,3} is ~2" true
    (within 0.05 2.0 (Metrics.quantile h 0.5));
  Alcotest.(check (float 0.0)) "extreme quantile clamps to the exact max" 3.0
    (Metrics.quantile h 0.99);
  check_bool "low quantile lands at the min" true
    (within 0.05 1.0 (Metrics.quantile h 0.01));
  (* uniform 1..100: the geometric buckets are ~4.4% wide, so every
     quantile must land within one bucket of the exact order statistic *)
  let u = Metrics.histogram r "uniform" in
  for i = 1 to 100 do
    Metrics.observe u (float_of_int i)
  done;
  List.iter
    (fun (q, expected) ->
      check_bool
        (Printf.sprintf "p%g of 1..100 is ~%g" (q *. 100.) expected)
        true
        (within 0.06 expected (Metrics.quantile u q)))
    [ (0.5, 50.0); (0.9, 90.0); (0.99, 99.0) ];
  Alcotest.(check (float 0.0)) "q=1 is the exact max" 100.0
    (Metrics.quantile u 1.0);
  check_bool "quantiles are monotone in q" true
    (Metrics.quantile u 0.5 <= Metrics.quantile u 0.9
     && Metrics.quantile u 0.9 <= Metrics.quantile u 0.99);
  (* sub-microsecond observations stay positive (latencies near the
     bottom of the bucket range must not collapse to zero) *)
  let tiny = Metrics.histogram r "tiny" in
  Metrics.observe tiny 1e-6;
  check_bool "tiny values keep a positive quantile" true
    (Metrics.quantile tiny 0.5 > 0.0)

(* --- Prometheus exposition ------------------------------------------------ *)

let test_prometheus_text () =
  let r = Metrics.create () in
  Metrics.set_gauge_int r "sim.cycles" 123;
  let c = Metrics.counter r ~labels:[ ("op", "an\"a\nlyze") ] "serve.requests" in
  Metrics.add c 7;
  let h = Metrics.histogram r "serve.latency_seconds" in
  Metrics.observe h 1.0;
  Metrics.observe h 1.0;
  let text = Sink.prometheus r in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  (* line-by-line: every line is a TYPE comment or a "name{labels} value"
     sample whose name uses only legal characters and whose value is a
     number *)
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  List.iter
    (fun line ->
      if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          check_bool ("legal family name: " ^ name) true
            (String.for_all is_name_char name);
          check_bool ("known kind: " ^ kind) true
            (List.mem kind [ "counter"; "gauge"; "summary" ])
        | _ -> Alcotest.failf "malformed TYPE line: %s" line
      end
      else begin
        let space =
          match String.rindex_opt line ' ' with
          | Some i -> i
          | None -> Alcotest.failf "sample line without value: %s" line
        in
        let name_part = String.sub line 0 space in
        let value_part =
          String.sub line (space + 1) (String.length line - space - 1)
        in
        let bare_name =
          match String.index_opt name_part '{' with
          | Some i -> String.sub name_part 0 i
          | None -> name_part
        in
        check_bool ("legal metric name: " ^ bare_name) true
          (bare_name <> "" && String.for_all is_name_char bare_name);
        check_bool ("numeric value: " ^ value_part) true
          (Float.is_finite (float_of_string value_part))
      end)
    lines;
  let mem line = List.mem line lines in
  (* dotted names are sanitized; label values escape quote and newline *)
  check_bool "counter sample" true
    (mem "serve_requests{op=\"an\\\"a\\nlyze\"} 7");
  check_bool "gauge sample" true (mem "sim_cycles 123");
  check_bool "counter TYPE" true (mem "# TYPE serve_requests counter");
  check_bool "gauge TYPE" true (mem "# TYPE sim_cycles gauge");
  check_bool "summary TYPE" true
    (mem "# TYPE serve_latency_seconds summary");
  (* the summary renders quantile samples plus _sum/_count; both
     observations were 1.0, and clamping makes the quantiles exact *)
  List.iter
    (fun q ->
      check_bool ("quantile sample " ^ q) true
        (mem (Printf.sprintf "serve_latency_seconds{quantile=\"%s\"} 1" q)))
    [ "0.5"; "0.9"; "0.99" ];
  check_bool "sum sample" true (mem "serve_latency_seconds_sum 2");
  check_bool "count sample" true (mem "serve_latency_seconds_count 2");
  (* exactly one TYPE line per family, preceding its samples *)
  check_int "one TYPE line per family" 1
    (List.length
       (List.filter (fun l -> l = "# TYPE serve_latency_seconds summary")
          lines))

(* --- request tracks ------------------------------------------------------- *)

let test_request_tracks () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      Obs.span "outside" (fun () -> ());
      let r =
        Obs.with_track "req:a" (fun () ->
            Obs.span "inside-a" (fun () -> ());
            17)
      in
      check_int "with_track returns the thunk result" 17 r;
      Obs.with_track "req:b" (fun () -> Obs.span "inside-b" (fun () -> ()));
      Obs.with_track "req:a" (fun () -> Obs.span "inside-a2" (fun () -> ()));
      let names = Obs.track_names () in
      check_int "one track per distinct name" 2 (List.length names);
      List.iter
        (fun (tid, _) ->
          check_bool "track tids live above the domain tids" true (tid >= 1000))
        names;
      check_bool "both names registered" true
        (List.sort compare (List.map snd names) = [ "req:a"; "req:b" ]);
      (* a re-used trace id accumulates onto the same track *)
      let a_names =
        List.sort compare
          (List.map (fun s -> s.Span.name) (Obs.track_spans "req:a"))
      in
      check_bool "track accumulates its requests' spans" true
        (a_names = [ "inside-a"; "inside-a2" ]);
      (match Obs.track_spans "req:b" with
       | [ s ] ->
         check_str "other track has its own span" "inside-b" s.Span.name;
         check_bool "track span carries the track tid" true
           (List.mem_assoc s.Span.tid names)
       | other -> Alcotest.failf "expected 1 span, got %d" (List.length other));
      check_bool "unknown track is empty" true (Obs.track_spans "req:?" = []);
      (* track spans ride along in the global export, and the span recorded
         outside any track stayed off the request tracks *)
      let all = List.map (fun s -> s.Span.name) (Obs.spans ()) in
      check_bool "spans() includes track spans" true
        (List.mem "inside-a" all && List.mem "outside" all);
      check_bool "outside span is not on a track" true
        (not
           (List.mem "outside"
              (List.map (fun s -> s.Span.name)
                 (Obs.track_spans "req:a" @ Obs.track_spans "req:b")))));
  (* disabled: with_track is a transparent single-branch no-op *)
  check_int "disabled with_track runs the thunk" 5
    (Obs.with_track "req:x" (fun () -> 5));
  check_bool "disabled with_track allocates nothing" true
    (Obs.track_names () = [])

let test_trace_event_track_labels () =
  let t = ref 0.0 in
  let e = Span.create ~tid:1000 ~clock:(fun () -> !t) () in
  Span.enter e "req-span";
  t := 0.00001;
  Span.exit_ e;
  let doc =
    Trace_event.to_string ~track_names:[ (1000, "req:a") ] (Span.completed e)
  in
  let events = as_arr (field "traceEvents" (parse_json doc)) in
  let thread_label =
    List.find_map
      (fun ev ->
        if as_str (field "ph" ev) = "M"
           && as_str (field "name" ev) = "thread_name"
           && int_of_float (as_num (field "tid" ev)) = 1000
        then Some (as_str (field "name" (field "args" ev)))
        else None)
      events
  in
  check_bool "thread row is labelled with the track name" true
    (thread_label = Some "req:a")

(* --- diagnostics --------------------------------------------------------- *)

let test_diag_rendering () =
  let captured = ref [] in
  Diag.set_printer (fun line -> captured := line :: !captured);
  Diag.emit ~file:"prog.mc" ~line:12 Diag.Error "bad %s" "token";
  Diag.emit Diag.Warning "loose bound";
  Diag.emit ~file:"prog.ann" Diag.Note "see line %d" 4;
  Diag.set_printer prerr_endline;
  check_bool "rendered forms" true
    (List.rev !captured
     = [ "prog.mc:12: error: bad token";
         "cinderella: warning: loose bound";
         "prog.ann: note: see line 4" ]);
  check_int "input exit code" 2 Diag.exit_input;
  check_int "analysis exit code" 1 Diag.exit_analysis

(* --- profiled simulator -------------------------------------------------- *)

let profile_src = {|
int acc;

int leaf(int x) {
  int i;
  for (i = 0; i < 5; i = i + 1)
    x = x + i;
  return x;
}

int main() {
  int j;
  int s;
  s = 0;
  for (j = 0; j < 3; j = j + 1)
    s = s + leaf(j);
  acc = s;
  return s;
}
|}

let test_profile_attribution_exact () =
  let compiled = Frontend.compile_string_exn profile_src in
  let prog = compiled.Compile.prog in
  let run profile =
    let m = Interp.create ~profile prog ~init:compiled.Compile.init_data in
    ignore (Interp.call m "main" []);
    m
  in
  let plain = run false and prof = run true in
  (* profiling must not change the simulation itself *)
  check_int "cycles unchanged" (Interp.cycles plain) (Interp.cycles prof);
  check_int "instructions unchanged" (Interp.instructions plain)
    (Interp.instructions prof);
  check_int "hits unchanged" (Interp.cache_hits plain) (Interp.cache_hits prof);
  check_int "misses unchanged" (Interp.cache_misses plain)
    (Interp.cache_misses prof);
  check_bool "counts unchanged" true
    (Interp.block_counts plain = Interp.block_counts prof);
  (* attribution is exact: self cycles over all blocks sum to the total *)
  let attributed =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Interp.block_cycles prof)
  in
  check_int "block self-cycles sum to the run total" (Interp.cycles prof)
    attributed;
  (* callee exclusion: leaf's cycles are attributed to leaf's blocks, not to
     the main block making the calls *)
  let leaf_cycles =
    List.fold_left
      (fun acc ((f, _), c) -> if f = "leaf" then acc + c else acc)
      0 (Interp.block_cycles prof)
  in
  check_bool "callee blocks carry their own cycles" true (leaf_cycles > 0);
  (* per-set i-cache tallies agree with the machine totals *)
  let hits, misses =
    Array.fold_left
      (fun (h, m) (sh, sm) -> (h + sh, m + sm))
      (0, 0)
      (Interp.icache_line_stats prof)
  in
  check_int "per-set hits sum" (Interp.cache_hits prof) hits;
  check_int "per-set misses sum" (Interp.cache_misses prof) misses;
  check_bool "plain machine reports no per-set stats" true
    (Interp.icache_line_stats plain = [||]);
  (* reset_stats clears the profile *)
  Interp.reset_stats prof;
  check_bool "reset clears block cycles" true (Interp.block_cycles prof = [])

let test_attribution_report () =
  let rows =
    Ipet.Report.attribution
      ~wcet_counts:[ (("f", 0), 10); (("f", 1), 4) ]
      ~wcet_cost:(fun _ b -> if b = 0 then 7 else 3)
      ~sim_counts:[ (("f", 0), 8) ]
      ~sim_cycles:[ (("f", 0), 40) ]
  in
  match rows with
  | [ first; second ] ->
    check_str "largest gap first" "f" first.Ipet.Report.attr_func;
    check_int "block" 0 first.Ipet.Report.attr_block;
    check_int "wcet cycles" 70 first.Ipet.Report.wcet_cycles;
    check_int "gap" 30 first.Ipet.Report.gap;
    check_int "unexecuted block gap" 12 second.Ipet.Report.gap;
    check_int "unexecuted block sim count" 0 second.Ipet.Report.sim_count
  | _ -> Alcotest.fail "expected 2 rows"

let suite =
  [ ("span nesting and ordering", `Quick, test_span_nesting);
    ("span monotonic clamp", `Quick, test_span_monotonic_clamp);
    ("span totals", `Quick, test_span_totals);
    ("disabled mode is a no-op", `Quick, test_disabled_noop);
    ("enabled span survives exceptions", `Quick, test_enabled_exception_safe);
    ("trace-event document", `Quick, test_trace_event_document);
    ("metrics registry", `Quick, test_metrics_registry);
    ("metrics JSON schema stable", `Quick, test_metrics_json_schema_stable);
    ("histogram quantiles", `Quick, test_histogram_quantiles);
    ("prometheus exposition", `Quick, test_prometheus_text);
    ("request tracks", `Quick, test_request_tracks);
    ("trace-event track labels", `Quick, test_trace_event_track_labels);
    ("diagnostics rendering", `Quick, test_diag_rendering);
    ("profiled simulator attribution", `Quick, test_profile_attribution_exact);
    ("attribution report", `Quick, test_attribution_report) ]
