(* Lexer / parser / typechecker / compiler unit tests. *)

module Lexer = Ipet_lang.Lexer
module Parser = Ipet_lang.Parser
module Ast = Ipet_lang.Ast
module Typecheck = Ipet_lang.Typecheck
module Frontend = Ipet_lang.Frontend
module P = Ipet_isa.Prog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- lexer -------------------------------------------------------------- *)

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let test_lexer_basics () =
  check_bool "arith" true
    (toks "x = a + 42;"
     = [ Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.IDENT "a"; Lexer.PLUS;
         Lexer.INT_LIT 42; Lexer.SEMI; Lexer.EOF ]);
  check_bool "float" true (toks "1.5" = [ Lexer.FLOAT_LIT 1.5; Lexer.EOF ]);
  check_bool "exponent" true (toks "2.5e2" = [ Lexer.FLOAT_LIT 250.0; Lexer.EOF ]);
  check_bool "hex" true (toks "0xff" = [ Lexer.INT_LIT 255; Lexer.EOF ]);
  check_bool "two-char ops" true
    (toks "<= >= == != && || << >>"
     = [ Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.AMPAMP; Lexer.BARBAR;
         Lexer.SHL; Lexer.SHR; Lexer.EOF ])

let test_lexer_comments () =
  check_bool "line comment" true (toks "a // c\nb" = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ]);
  check_bool "block comment" true (toks "a /* x\ny */ b" = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ])

let test_lexer_lines () =
  let located = Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map (fun l -> l.Lexer.line) located in
  check_bool "line numbers" true (lines = [ 1; 2; 4; 4 ])

let test_lexer_error () =
  check_bool "illegal char" true
    (try ignore (Lexer.tokenize "a $ b"); false with Lexer.Error (_, 1) -> true)

(* literals spell E32 bit patterns: anything in [0, 2^32) is accepted and
   wrapped to its two's-complement value; anything wider — including
   literals so long they used to crash int_of_string — is a positioned
   diagnostic, never an uncaught exception *)
let test_lexer_int_literals () =
  check_bool "INT_MAX" true
    (toks "2147483647" = [ Lexer.INT_LIT 2147483647; Lexer.EOF ]);
  check_bool "INT_MAX+1 wraps to min_int32" true
    (toks "2147483648" = [ Lexer.INT_LIT (-2147483648); Lexer.EOF ]);
  check_bool "UINT_MAX wraps to -1" true
    (toks "4294967295" = [ Lexer.INT_LIT (-1); Lexer.EOF ]);
  check_bool "hex UINT_MAX wraps to -1" true
    (toks "0xFFFFFFFF" = [ Lexer.INT_LIT (-1); Lexer.EOF ]);
  check_bool "2^32 rejected with line" true
    (try ignore (Lexer.tokenize "x\n4294967296") ; false
     with Lexer.Error (_, 2) -> true);
  check_bool "absurdly long literal rejected, not crashed" true
    (try ignore (Lexer.tokenize (String.make 40 '9')); false
     with Lexer.Error (_, 1) -> true);
  check_bool "absurdly long hex literal rejected" true
    (try ignore (Lexer.tokenize ("0x" ^ String.make 40 'F')); false
     with Lexer.Error (_, 1) -> true)

(* -2147483648 must arrive in the simulator as min_int32: the lexer wraps
   the magnitude and the parser folds the unary minus back onto it *)
let test_min_int_end_to_end () =
  let compiled = Frontend.compile_string_exn "int f() { return -2147483648; }" in
  let m = Ipet_sim.Interp.create compiled.Ipet_lang.Compile.prog
      ~init:compiled.Ipet_lang.Compile.init_data
  in
  (match Ipet_sim.Interp.call m "f" [] with
   | Some (Ipet_isa.Value.Vint i) -> check_int "min_int32" (-2147483648) i
   | _ -> Alcotest.fail "expected int")

(* --- parser ------------------------------------------------------------- *)

let test_parse_precedence () =
  let e = Parser.parse_expr_string "1 + 2 * 3" in
  (match e.Ast.desc with
   | Ast.Binop (Ast.Add, _, { Ast.desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
   | _ -> Alcotest.fail "expected 1 + (2 * 3)");
  let e = Parser.parse_expr_string "a < b && c < d || e" in
  (match e.Ast.desc with
   | Ast.Binop (Ast.Lor, { Ast.desc = Ast.Binop (Ast.Land, _, _); _ }, _) -> ()
   | _ -> Alcotest.fail "expected (a<b && c<d) || e")

let test_parse_unary_and_cast () =
  let e = Parser.parse_expr_string "-x + !y" in
  (match e.Ast.desc with
   | Ast.Binop (Ast.Add, { Ast.desc = Ast.Unop (Ast.Neg, _); _ },
                { Ast.desc = Ast.Unop (Ast.Lnot, _); _ }) -> ()
   | _ -> Alcotest.fail "expected (-x) + (!y)");
  let e = Parser.parse_expr_string "(float) n / 2.0" in
  (match e.Ast.desc with
   | Ast.Binop (Ast.Div, { Ast.desc = Ast.Cast (Ast.Tfloat, _); _ }, _) -> ()
   | _ -> Alcotest.fail "expected ((float) n) / 2.0")

let test_parse_program () =
  let src = {|
    int data[10];
    int total = 0;
    int sum(int n) {
      int i;
      int acc;
      acc = 0;
      for (i = 0; i < n; i = i + 1)
        acc = acc + data[i];
      return acc;
    }
    void main() { total = sum(10); }
  |} in
  let p = Parser.parse src in
  check_int "globals" 2 (List.length p.Ast.globals);
  check_int "funcs" 2 (List.length p.Ast.funcs);
  (match p.Ast.globals with
   | g :: _ ->
     check_bool "array size" true (g.Ast.gsize = Some 10);
     check_bool "name" true (g.Ast.gname = "data")
   | [] -> Alcotest.fail "no globals")

let test_parse_dangling_else () =
  let src = "int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }" in
  let p = Parser.parse src in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.sdesc = Ast.If (_, [ { Ast.sdesc = Ast.If (_, _, else_b); _ } ], []); _ }; _ ] ->
    check_int "else attaches to inner if" 1 (List.length else_b)
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_error_reports_line () =
  check_bool "error line" true
    (try ignore (Parser.parse "int f() {\n  return 1 +;\n}"); false
     with Parser.Error (_, 2) -> true)

(* --- typechecker -------------------------------------------------------- *)

let expect_type_error src =
  match Frontend.compile_string src with
  | Error { message; _ } ->
    check_bool "is type error" true
      (String.length message >= 10 && String.sub message 0 10 = "type error")
  | Ok _ -> Alcotest.fail "expected a type error"

let test_type_errors () =
  expect_type_error "int f() { return x; }";
  expect_type_error "int f() { float g; g = 1.0; return g; }";
  expect_type_error "int f() { int a; a = 1; return a[0]; }";
  expect_type_error "int f(int a) { return f(a, a); }";
  expect_type_error "void f() { return 1; }";
  expect_type_error "int f() { break; return 0; }";
  expect_type_error "int f() { int a; int a; return 0; }";
  expect_type_error "float x; float y; int f() { if (x + y) return 1; return 0; }"

let test_type_promotion () =
  (* int literal promoted to float in mixed arithmetic and assignment *)
  match Frontend.compile_string
          "float f(int n) { float r; r = n + 0.5; return r * 2; }" with
  | Ok _ -> ()
  | Error { message; line } ->
    Alcotest.fail (Printf.sprintf "line %d: %s" line message)

(* --- compiler ----------------------------------------------------------- *)

let compile_func src name =
  let compiled = Frontend.compile_string_exn src in
  P.find_func compiled.Ipet_lang.Compile.prog name

let test_compile_shapes () =
  (* if/else produces the paper's Fig. 2 diamond: 4 blocks *)
  let f = compile_func
      "int f(int p) { int q; if (p) q = 1; else q = 2; return q; }" "f" in
  check_int "if-else blocks" 4 (Array.length f.P.blocks);
  (* while produces the paper's Fig. 3 shape: pre-header, test, body, exit *)
  let f = compile_func
      "int g(int p) { int q; q = p; while (q < 10) q = q + 1; return q; }" "g" in
  check_int "while blocks" 4 (Array.length f.P.blocks)

let test_compile_short_circuit () =
  (* && must produce an extra test block, not an eager And *)
  let f = compile_func
      "int h(int a, int b) { if (a > 0 && b > 0) return 1; return 0; }" "h" in
  check_bool "more than diamond" true (Array.length f.P.blocks >= 4)

let test_compile_dead_code_pruned () =
  let f = compile_func
      "int f(int a) { return a; a = a + 1; return a; }" "f" in
  check_int "single block" 1 (Array.length f.P.blocks)

let test_compile_validates () =
  let compiled = Frontend.compile_string_exn
      "int fib(int n) { int a; int b; int i; int t; a = 0; b = 1; \
       for (i = 0; i < n; i = i + 1) { t = a + b; a = b; b = t; } return a; }"
  in
  check_bool "valid" true (P.validate compiled.Ipet_lang.Compile.prog = Ok ())

let suite =
  [ ("lexer basics", `Quick, test_lexer_basics);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer line numbers", `Quick, test_lexer_lines);
    ("lexer error", `Quick, test_lexer_error);
    ("lexer 32-bit literals", `Quick, test_lexer_int_literals);
    ("min_int end to end", `Quick, test_min_int_end_to_end);
    ("parser precedence", `Quick, test_parse_precedence);
    ("parser unary and cast", `Quick, test_parse_unary_and_cast);
    ("parser whole program", `Quick, test_parse_program);
    ("parser dangling else", `Quick, test_parse_dangling_else);
    ("parser error line", `Quick, test_parse_error_reports_line);
    ("typecheck rejects bad programs", `Quick, test_type_errors);
    ("typecheck int->float promotion", `Quick, test_type_promotion);
    ("compile control-flow shapes", `Quick, test_compile_shapes);
    ("compile short-circuit", `Quick, test_compile_short_circuit);
    ("compile dead code pruned", `Quick, test_compile_dead_code_pruned);
    ("compile output validates", `Quick, test_compile_validates) ]

(* --- do-while ---------------------------------------------------------- *)

let test_do_while_semantics () =
  let compiled = Frontend.compile_string_exn
      "int f(int n) { int i; int s; s = 0; i = 0; \
       do { s = s + i; i = i + 1; } while (i < n); return s; }"
  in
  let m = Ipet_sim.Interp.create compiled.Ipet_lang.Compile.prog
      ~init:compiled.Ipet_lang.Compile.init_data
  in
  let run n =
    match Ipet_sim.Interp.call m "f" [ Ipet_isa.Value.Vint n ] with
    | Some (Ipet_isa.Value.Vint i) -> i
    | _ -> Alcotest.fail "expected int"
  in
  check_int "sum 0..4" 10 (run 5);
  (* do-while always runs the body at least once, even when the condition
     is false on entry *)
  check_int "runs once for n=0" 0 (run 0)

let test_do_while_cfg_shape () =
  (* the back edge targets the body top, not a test block: the loop header
     is the body *)
  let f = compile_func
      "int f(int n) { int i; i = 0; do i = i + 1; while (i < n); return i; }" "f"
  in
  let cfg = Ipet_cfg.Cfg.of_func f in
  let dom = Ipet_cfg.Dominators.compute cfg in
  let loops = Ipet_cfg.Loops.detect cfg dom in
  check_int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  (* in a do-while the header block contains real work (the body), and the
     condition block is inside the loop *)
  check_bool "header has instructions" true
    (Array.length f.P.blocks.(l.Ipet_cfg.Loops.header).P.instrs > 0)

let test_do_while_analysis () =
  let src =
    "int f(int n) { int i; int s; s = 0; i = 0;\n\
     do {\n\
     s = s + i;\n\
     i = i + 1;\n\
     } while (i < 12);\n\
     return s; }"
  in
  let compiled = Frontend.compile_string_exn src in
  (* the do-while header is the body's first line (line 3) *)
  let result =
    Ipet.Analysis.analyze
      (Ipet.Analysis.spec compiled.Ipet_lang.Compile.prog ~root:"f"
         ~loop_bounds:[ Ipet.Annotation.loop ~func:"f" ~line:3 ~lo:11 ~hi:11 ])
  in
  let m = Ipet_sim.Interp.create compiled.Ipet_lang.Compile.prog
      ~init:compiled.Ipet_lang.Compile.init_data
  in
  Ipet_sim.Interp.flush_cache m;
  ignore (Ipet_sim.Interp.call m "f" [ Ipet_isa.Value.Vint 0 ]);
  let t = Ipet_sim.Interp.cycles m in
  check_bool "bound holds" true
    (result.Ipet.Analysis.bcet.Ipet.Analysis.cycles <= t
     && t <= result.Ipet.Analysis.wcet.Ipet.Analysis.cycles)

let test_do_while_break_continue () =
  let src = {|
    int f(int n) {
      int i; int s;
      s = 0; i = 0;
      do {
        i = i + 1;
        if (i == 3) continue;
        if (i == 8) break;
        s = s + i;
      } while (i < n);
      return s;
    }
  |} in
  let compiled = Frontend.compile_string_exn src in
  let m = Ipet_sim.Interp.create compiled.Ipet_lang.Compile.prog
      ~init:compiled.Ipet_lang.Compile.init_data
  in
  match Ipet_sim.Interp.call m "f" [ Ipet_isa.Value.Vint 100 ] with
  | Some (Ipet_isa.Value.Vint r) ->
    (* 1+2+4+5+6+7 = 25 (3 skipped by continue, loop broken at 8) *)
    check_int "break/continue in do-while" 25 r
  | _ -> Alcotest.fail "expected int"

let suite =
  suite
  @ [ ("do-while semantics", `Quick, test_do_while_semantics);
      ("do-while CFG shape", `Quick, test_do_while_cfg_shape);
      ("do-while analysis", `Quick, test_do_while_analysis);
      ("do-while break/continue", `Quick, test_do_while_break_continue) ]
