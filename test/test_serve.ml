(* The serve subsystem: JSON wire format, content-addressed cache keys
   (the single-edit invalidation property over the fuzz generator), the
   incremental engine against the monolithic analysis, cold/warm report
   identity, LRU eviction, the request protocol, and a spawned-daemon
   socket round trip. *)

module J = Ipet_serve.Json
module Key = Ipet_serve.Key
module Cache = Ipet_serve.Cache
module Incr = Ipet_serve.Incremental
module Protocol = Ipet_serve.Protocol
module Client = Ipet_serve.Client
module A = Ipet.Analysis
module P = Ipet_isa.Prog
module Instr = Ipet_isa.Instr
module Layout = Ipet_isa.Layout
module Cost = Ipet_machine.Cost
module Icache = Ipet_machine.Icache
module Compile = Ipet_lang.Compile
module Frontend = Ipet_lang.Frontend
module Gen = Ipet_fuzz.Gen
module Render = Ipet_fuzz.Render
module Bspec = Ipet_suite.Bspec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmp_counter = ref 0

let tmp_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

(* --- JSON ----------------------------------------------------------------- *)

let roundtrip v =
  match J.parse (J.to_string v) with
  | Ok v' -> v' = v
  | Error _ -> false

let test_json_roundtrip () =
  let v =
    J.Obj
      [ ("null", J.Null);
        ("bools", J.List [ J.Bool true; J.Bool false ]);
        ("ints", J.List [ J.Int 0; J.Int (-7); J.Int max_int; J.Int min_int ]);
        ("floats", J.List [ J.Float 1.5; J.Float (-0.125); J.Float 1e100 ]);
        ("str", J.Str "line\nbreak \"quoted\" \\ tab\t control\x01 utf8 \xc3\xa9");
        ("nested", J.Obj [ ("empty_list", J.List []); ("empty_obj", J.Obj []) ]) ]
  in
  check_bool "compound value survives a print/parse round trip" true
    (roundtrip v);
  (* ints and floats stay distinct *)
  check_bool "int is parsed as Int" true (J.parse "42" = Ok (J.Int 42));
  check_bool "exponent is parsed as Float" true
    (J.parse "1e2" = Ok (J.Float 100.0));
  (* unicode escapes, including a surrogate pair *)
  check_bool "\\u escape decodes to UTF-8" true
    (J.parse {|"\u00e9 \ud83d\ude00"|} = Ok (J.Str "\xc3\xa9 \xf0\x9f\x98\x80"))

let test_json_nonfinite () =
  (* JSON has no nan/infinity literal; the printer must not pass a bogus
     measurement off as a real zero, so non-finite degrades to null — and
     the output must still parse *)
  List.iter
    (fun f ->
      let printed = J.to_string (J.List [ J.Float f; J.Int 1 ]) in
      check_string
        (Printf.sprintf "%h prints as null" f)
        "[null,1]" printed;
      check_bool "printed form re-parses" true
        (J.parse printed = Ok (J.List [ J.Null; J.Int 1 ])))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_json_errors () =
  let rejects s = match J.parse s with Ok _ -> false | Error _ -> true in
  List.iter
    (fun s -> check_bool (Printf.sprintf "rejects %S" s) true (rejects s))
    [ ""; "nul"; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2";
      "{\"a\":1}garbage"; "\"\\q\""; "\"\xc3"; "\"\\ud800\"";
      String.make 600 '[' ^ String.make 600 ']' ]

let json_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
    let leaf =
      oneof
        [ return J.Null;
          map (fun b -> J.Bool b) bool;
          map (fun i -> J.Int i) int;
          map (fun s -> J.Str s) (string_size (int_bound 12));
          (* odd/8 is never integral, so the printer can't collapse the
             float to an int literal (huge integral floats would re-parse
             as Int; real reports only carry ints) *)
          map
            (fun i -> J.Float (float_of_int ((2 * i) + 1) /. 8.0))
            (int_bound 1_000_000) ]
    in
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2)));
          map
            (fun l -> J.Obj l)
            (list_size (int_bound 4)
               (pair (string_size (int_bound 8)) (self (n / 2)))) ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"random values survive a print/parse round trip"
    ~count:200 (QCheck.make json_gen) roundtrip

(* --- cache keys ----------------------------------------------------------- *)

let compile_case seed =
  let case = Gen.case seed in
  match Frontend.compile_string (Render.program case.Gen.prog) with
  | Ok compiled -> (case.Gen.cache, compiled.Compile.prog)
  | Error { Frontend.message; _ } ->
    Alcotest.failf "fuzz case %d does not compile: %s" seed message

(* bump the first integer-immediate ALU operand found in the function *)
let mutate_imm (f : P.func) =
  let changed = ref false in
  let blocks =
    Array.map
      (fun (b : P.block) ->
        { b with
          P.instrs =
            Array.map
              (fun i ->
                if !changed then i
                else
                  match i with
                  | Instr.Alu (op, r, a, Instr.Imm n) ->
                    changed := true;
                    Instr.Alu (op, r, a, Instr.Imm (n + 1))
                  | i -> i)
              b.P.instrs })
      f.P.blocks
  in
  if !changed then Some { f with P.blocks = blocks } else None

(* distinct serializations must have distinct digests (and identical
   serializations identical digests) across everything the run hashes *)
let seen_keys : (string, string) Hashtbl.t = Hashtbl.create 64

let record_key bytes key =
  (match Hashtbl.find_opt seen_keys key with
   | Some bytes' ->
     check_string "equal keys imply equal serializations" bytes' bytes
   | None -> Hashtbl.add seen_keys key bytes);
  key

let func_key_checked ~cache ~costs f =
  let bytes =
    Key.func_bytes ~mach:"e32" ~cache ~dcache:None ~costs ~annotations:[]
      ~callees:[] f
  in
  record_key bytes
    (Key.func_key ~mach:"e32" ~cache ~dcache:None ~costs ~annotations:[]
       ~callees:[] f)

(* the single-edit property: changing one immediate in one function changes
   that function's key and nobody else's *)
let prop_single_edit_invalidation =
  QCheck.Test.make
    ~name:"an immediate edit invalidates exactly the edited function's key"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cache, prog = compile_case seed in
      let layout = Layout.make prog in
      let costs f = Cost.func_bounds ~prog cache layout f in
      let keys =
        Array.map
          (fun f -> (f, func_key_checked ~cache ~costs:(costs f) f))
          prog.P.funcs
      in
      match List.find_map mutate_imm (Array.to_list prog.P.funcs) with
      | None -> true (* no immediate anywhere: nothing to edit *)
      | Some mutated ->
        Array.for_all
          (fun ((f : P.func), key) ->
            if f.P.name = mutated.P.name then
              (* same block structure, same costs — only the compiled
                 bytes change the key *)
              func_key_checked ~cache ~costs:(costs f) mutated <> key
            else func_key_checked ~cache ~costs:(costs f) f = key)
          keys)

(* changing only the machine id changes every digest the run hashes —
   holding the program, costs, cache geometry, annotations and callees
   fixed — so two machines can never share a cache entry even when their
   timings happen to agree on the program at hand *)
let prop_mach_changes_every_key =
  QCheck.Test.make
    ~name:"changing only the machine id changes every key" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cache, prog = compile_case seed in
      let layout = Layout.make prog in
      let func_key ~mach (f : P.func) =
        let costs = Cost.func_bounds ~prog cache layout f in
        Key.func_key ~mach ~cache ~dcache:None ~costs ~annotations:[]
          ~callees:[] f
      in
      let program_key ~mach =
        Key.program_key ~mach ~cache ~dcache:None ~root:"main"
          ~annotations:[] ~functional:[] prog
      in
      Array.for_all
        (fun f -> func_key ~mach:"e32" f <> func_key ~mach:"m7" f)
        prog.P.funcs
      && program_key ~mach:"e32" <> program_key ~mach:"m7")

let test_key_callee_interval () =
  let _, prog = compile_case 3 in
  let cache = Icache.i960kb in
  let layout = Layout.make prog in
  let f = prog.P.funcs.(0) in
  let costs = Cost.func_bounds ~prog cache layout f in
  let key callees =
    Key.func_key ~mach:"e32" ~cache ~dcache:None ~costs ~annotations:[]
      ~callees f
  in
  check_bool "callee interval is part of the key" true
    (key [ ("g", 10, 2) ] <> key [ ("g", 11, 2) ]);
  check_bool "same callee intervals, same key" true
    (key [ ("g", 10, 2) ] = key [ ("g", 10, 2) ])

(* --- incremental vs monolithic ------------------------------------------- *)

let bounds_of_report rep =
  match
    ( Option.bind (J.member "bcet" rep) J.to_int,
      Option.bind (J.member "wcet" rep) J.to_int )
  with
  | Some b, Some w -> (b, w)
  | _ -> Alcotest.fail "report lacks integer bcet/wcet"

let test_matches_monolithic () =
  List.iter
    (fun name ->
      let spec = Bspec.spec (Ipet_suite.Suite.find name) in
      (* the per-function decomposition path: these benchmarks carry no
         functionality constraints *)
      let spec = { spec with A.functional = [] } in
      let mono = A.estimated_bound spec in
      let rep, stats = Incr.analyze spec in
      Alcotest.(check (pair int int))
        (name ^ ": incremental bounds equal the monolithic analysis")
        mono (bounds_of_report rep);
      check_bool (name ^ ": decomposed per function") true
        (stats.Incr.units_total > 0
         && J.member "unit" rep = Some (J.Str "func")))
    [ "circle"; "line"; "des"; "recon" ]

let test_functional_fallback () =
  (* check_data's functionality constraints couple functions, so the
     incremental engine must fall back to one whole-program unit — and
     still reproduce the monolithic bounds *)
  let spec = Bspec.spec (Ipet_suite.Suite.find "check_data") in
  let mono = A.estimated_bound spec in
  let rep, stats = Incr.analyze spec in
  Alcotest.(check (pair int int))
    "fallback bounds equal the monolithic analysis" mono
    (bounds_of_report rep);
  check_bool "analyzed as a single program unit" true
    (J.member "unit" rep = Some (J.Str "program") && stats.Incr.units_total = 1)

(* --- cold/warm cache behavior -------------------------------------------- *)

let test_cold_warm_identical () =
  let spec = Bspec.spec (Ipet_suite.Suite.find "des") in
  let spec = { spec with A.functional = [] } in
  let cache =
    Cache.create ~dir:(tmp_dir "serve-coldwarm") ~cap_bytes:(16 * 1024 * 1024)
  in
  let uncached, _ = Incr.analyze spec in
  let cold, cold_stats = Incr.analyze ~cache spec in
  let warm, warm_stats = Incr.analyze ~cache spec in
  check_string "cached report is byte-identical to the uncached one"
    (J.to_string uncached) (J.to_string cold);
  check_string "warm report is byte-identical to the cold one"
    (J.to_string cold) (J.to_string warm);
  check_bool "cold run solved every unit" true
    (cold_stats.Incr.units_solved = cold_stats.Incr.units_total
     && cold_stats.Incr.ilp_solves > 0);
  check_int "warm run solved nothing" 0 warm_stats.Incr.units_solved;
  check_int "warm run invoked no solver" 0 warm_stats.Incr.ilp_solves

(* a two-function program whose leaf we can edit without changing its
   per-entry interval (addition costs the same whatever the immediate) *)
let edit_source imm =
  Printf.sprintf
    {|int leaf(int x) {
  return (x + %d);
}

int main(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    acc = acc + leaf(i);
  }
  return acc;
}
|}
    imm

let edit_spec source =
  match Frontend.compile_string source with
  | Error _ -> Alcotest.fail "edit example does not compile"
  | Ok compiled ->
    let line = Bspec.line_containing ~source "for (" in
    A.spec
      ~loop_bounds:[ Ipet.Annotation.loop ~func:"main" ~line ~lo:8 ~hi:8 ]
      ~root:"main" compiled.Compile.prog

let test_one_function_edit () =
  let cache =
    Cache.create ~dir:(tmp_dir "serve-edit") ~cap_bytes:(16 * 1024 * 1024)
  in
  let _, cold = Incr.analyze ~cache (edit_spec (edit_source 3)) in
  check_int "cold run solves both functions" 2 cold.Incr.units_solved;
  (* a size-preserving, timing-neutral edit to leaf: x+3 -> x+5 keeps
     leaf's interval, so main's key (costs + callee intervals) is
     unchanged and only leaf is re-solved *)
  let _, incr = Incr.analyze ~cache (edit_spec (edit_source 5)) in
  check_int "the edit re-solves only the edited function" 1
    incr.Incr.units_solved;
  check_int "the caller is served from the cache" 1 incr.Incr.units_cached;
  let _, warm = Incr.analyze ~cache (edit_spec (edit_source 5)) in
  check_int "repeating the edited request solves nothing" 0
    warm.Incr.units_solved

(* --- LRU eviction --------------------------------------------------------- *)

let test_lru_eviction () =
  let dir = tmp_dir "serve-lru" in
  let k i = Digest.to_hex (Digest.string (string_of_int i)) in
  let payload i =
    J.Obj [ ("n", J.Int i); ("pad", J.Str (String.make 40 'x')) ]
  in
  let entry_bytes = String.length (J.to_string (payload 0)) in
  let cache = Cache.create ~dir ~cap_bytes:(2 * entry_bytes) in
  Cache.put cache (k 1) (payload 1);
  Cache.put cache (k 2) (payload 2);
  (* refresh 1 so 2 is now least recently used *)
  check_bool "k1 present" true (Cache.get cache (k 1) <> None);
  Cache.put cache (k 3) (payload 3);
  let s = Cache.stats cache in
  check_int "one entry was evicted" 1 s.Cache.evictions;
  check_int "two entries remain" 2 s.Cache.entries;
  check_bool "the least-recently-used entry went" true
    (Cache.get cache (k 2) = None);
  check_bool "the refreshed entry stayed" true (Cache.get cache (k 1) <> None);
  (* recency and entries survive a restart via the index file *)
  let reopened = Cache.create ~dir ~cap_bytes:(2 * entry_bytes) in
  check_int "reopened cache sees the surviving entries" 2
    (Cache.stats reopened).Cache.entries;
  check_bool "entries are readable after reopen" true
    (Cache.get reopened (k 3) = Some (payload 3))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_cert_self_heal () =
  let cache =
    Cache.create ~dir:(tmp_dir "serve-cert-heal") ~cap_bytes:(16 * 1024 * 1024)
  in
  let spec = edit_spec (edit_source 3) in
  let cold_rep, cold = Incr.analyze ~cache spec in
  check_int "cold run proves every bound it computed"
    (2 * cold.Incr.units_solved) cold.Incr.certs_checked;
  check_int "cold run rejects nothing" 0 cold.Incr.certs_rejected;
  let warm_rep, warm = Incr.analyze ~cache spec in
  check_int "warm run solves nothing" 0 warm.Incr.units_solved;
  check_int "warm bounds are re-proven, not trusted"
    (2 * warm.Incr.units_cached) warm.Incr.certs_checked;
  check_int "warm run rejects nothing" 0 warm.Incr.certs_rejected;
  check_string "warm report is byte-identical" (J.to_string cold_rep)
    (J.to_string warm_rep);
  (* tamper with one cached certificate: the engine must notice, drop the
     entry, and re-solve — never serve a bound it cannot re-prove *)
  let dir = Cache.dir cache in
  let entry =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare |> List.hd
  in
  let path = Filename.concat dir entry in
  let tamper = function
    | J.Obj fields ->
      J.Obj
        (List.map
           (function
             | ("wcet", J.Obj wf) ->
               ( "wcet",
                 J.Obj
                   (List.map
                      (function
                        | "cert", J.Str _ -> ("cert", J.Str "tampered")
                        | kv -> kv)
                      wf) )
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "cache entry is not an object"
  in
  (match J.parse (read_file path) with
   | Ok j -> write_file path (J.to_string (tamper j))
   | Error m -> Alcotest.failf "unparsable cache entry: %s" m);
  let healed_rep, healed = Incr.analyze ~cache spec in
  check_bool "the tampered certificate was rejected" true
    (healed.Incr.certs_rejected >= 1);
  check_int "exactly the tampered unit was re-solved" 1
    healed.Incr.units_solved;
  check_string "the healed report is byte-identical" (J.to_string cold_rep)
    (J.to_string healed_rep)

let test_tmp_sweep () =
  (* a writer that dies between open and rename leaves "*.tmp" files the
     entry namespace can never reference; reopening the cache sweeps them
     and keeps the real entries *)
  let dir = tmp_dir "serve-tmp-sweep" in
  let k i = Digest.to_hex (Digest.string (string_of_int i)) in
  let cache = Cache.create ~dir ~cap_bytes:(1024 * 1024) in
  Cache.put cache (k 1) (J.Obj [ ("n", J.Int 1) ]);
  let orphan name =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc "half-written";
    close_out oc
  in
  orphan (k 2 ^ ".json.tmp");
  orphan "index.tmp";
  let reopened = Cache.create ~dir ~cap_bytes:(1024 * 1024) in
  check_bool "orphaned entry temp was swept" false
    (Sys.file_exists (Filename.concat dir (k 2 ^ ".json.tmp")));
  check_bool "orphaned index temp was swept" false
    (Sys.file_exists (Filename.concat dir "index.tmp"));
  check_bool "real entries survive the sweep" true
    (Cache.get reopened (k 1) = Some (J.Obj [ ("n", J.Int 1) ]))

(* --- protocol ------------------------------------------------------------- *)

let pconfig = Protocol.make ()

let response_code response =
  match J.parse response with
  | Error _ -> Alcotest.failf "unparsable response: %s" response
  | Ok j ->
    (match J.member "ok" j with
     | Some (J.Bool true) -> "ok"
     | _ ->
       (match
          Option.bind
            (Option.bind (J.member "error" j) (J.member "code"))
            J.to_str
        with
        | Some code -> code
        | None -> Alcotest.failf "error without code: %s" response))

let analyze_request ?(extra = []) source =
  J.to_string
    (J.Obj
       ([ ("v", J.Int Protocol.version);
          ("op", J.Str "analyze");
          ("source", J.Str source) ]
        @ extra))

let test_protocol_errors () =
  let code line =
    let response, outcome = Protocol.handle_line pconfig line in
    check_bool "errors never stop the server" true
      (outcome = Protocol.Continue);
    response_code response
  in
  check_string "garbage" "proto" (code "this is not json");
  check_string "missing v" "proto" (code {|{"op":"hello"}|});
  check_string "future version" "proto" (code {|{"v":99,"op":"hello"}|});
  check_string "unknown op" "proto" (code {|{"v":1,"op":"frobnicate"}|});
  check_string "analyze without source" "proto"
    (code {|{"v":1,"op":"analyze"}|});
  check_string "unparsable source" "input"
    (code (analyze_request "int main( {"));
  check_string "no root" "input"
    (code (analyze_request "int f() {\n  return 1;\n}\n"));
  check_string "unknown root" "input"
    (code
       (analyze_request "int f() {\n  return 1;\n}\n"
          ~extra:[ ("root", J.Str "g") ]));
  check_string "bad annotations" "input"
    (code
       (analyze_request "int main() {\n  return 1;\n}\n"
          ~extra:[ ("annotations", J.Str "loop main oops") ]));
  check_string "missing loop bound" "analysis"
    (code
       (analyze_request
          "int main(int n) {\n\
           \  int i;\n\
           \  for (i = 0; i < n; i = i + 1) {\n\
           \  }\n\
           \  return i;\n\
           }\n"
          ~extra:[ ("root", J.Str "main") ]));
  check_string "zero deadline" "timeout"
    (code
       (analyze_request "int main() {\n  return 1;\n}\n"
          ~extra:
            [ ("root", J.Str "main");
              ("options", J.Obj [ ("timeout_ms", J.Int 0) ]) ]))

let edit_annotations = "root main\nloop main 8 8 8\n"

let test_protocol_requests () =
  let handle line = Protocol.handle_line pconfig line in
  let hello, outcome = handle {|{"v":1,"op":"hello","id":7}|} in
  check_bool "hello continues" true (outcome = Protocol.Continue);
  (match J.parse hello with
   | Ok j ->
     check_bool "hello reports the build version" true
       (J.member "version" j = Some (J.Str Ipet_serve.Version.version));
     check_bool "hello echoes the id" true (J.member "id" j = Some (J.Int 7))
   | Error _ -> Alcotest.fail "unparsable hello");
  let response, _ =
    handle
      (analyze_request (edit_source 3)
         ~extra:[ ("annotations", J.Str edit_annotations) ])
  in
  check_string "analyze succeeds" "ok" (response_code response);
  (match J.parse response with
   | Ok j ->
     let report = Option.get (J.member "report" j) in
     check_bool "report has a positive wcet" true
       (match bounds_of_report report with b, w -> b > 0 && w >= b)
   | Error _ -> Alcotest.fail "unparsable analyze response");
  let _, outcome = handle {|{"v":1,"op":"shutdown"}|} in
  check_bool "shutdown stops the server" true (outcome = Protocol.Shutdown)

(* --- trace propagation ----------------------------------------------------- *)

let trace_of response =
  match J.parse response with
  | Ok j -> Option.bind (J.member "trace" j) J.to_str
  | Error _ -> None

let test_trace_roundtrip () =
  let pc = Protocol.make () in
  let handle line = fst (Protocol.handle_line pc line) in
  let echoed name line expected_code =
    let response = handle line in
    check_string (name ^ " outcome") expected_code (response_code response);
    check_bool (name ^ " echoes the trace id") true
      (trace_of response = Some ("t-" ^ name))
  in
  echoed "hello" {|{"v":1,"op":"hello","trace":"t-hello"}|} "ok";
  echoed "error" {|{"v":1,"op":"frobnicate","trace":"t-error"}|} "proto";
  echoed "version"
    {|{"v":99,"op":"hello","trace":"t-version"}|} "proto";
  echoed "timeout"
    (analyze_request "int main() {\n  return 1;\n}\n"
       ~extra:
         [ ("trace", J.Str "t-timeout");
           ("root", J.Str "main");
           ("options", J.Obj [ ("timeout_ms", J.Int 0) ]) ])
    "timeout";
  (* a request without a trace field gets no trace echo *)
  check_bool "no trace in, no trace out" true
    (trace_of (handle {|{"v":1,"op":"hello"}|}) = None)

(* --- metrics / recent / stats ops ------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_observability_ops () =
  let pc = Protocol.make () in
  let handle line = fst (Protocol.handle_line pc line) in
  ignore (handle {|{"v":1,"op":"hello"}|});
  ignore (handle {|{"v":1,"op":"frobnicate","trace":"bad-req"}|});
  (* recent: newest first, with the failed request's error taxonomy code *)
  (match J.parse (handle {|{"v":1,"op":"recent"}|}) with
   | Error _ -> Alcotest.fail "unparsable recent response"
   | Ok j ->
     let events =
       Option.get (Option.bind (J.member "events" j) J.to_list)
     in
     check_bool "recent reports the recorded requests" true
       (List.length events >= 2);
     let seqs =
       List.map
         (fun e -> Option.get (Option.bind (J.member "seq" e) J.to_int))
         events
     in
     check_bool "events are newest-first" true
       (List.sort (fun a b -> compare b a) seqs = seqs);
     let bad =
       List.find_opt
         (fun e -> J.member "id" e = Some (J.Str "bad-req"))
         events
     in
     (match bad with
      | None -> Alcotest.fail "failed request missing from recent"
      | Some e ->
        check_bool "failed request carries its error code" true
          (J.member "error" e = Some (J.Str "proto"));
        check_bool "event carries its op" true
          (J.member "op" e = Some (J.Str "frobnicate"))));
  (* metrics: a JSON registry snapshot plus the Prometheus text *)
  (match J.parse (handle {|{"v":1,"op":"metrics"}|}) with
   | Error _ -> Alcotest.fail "unparsable metrics response"
   | Ok j ->
     let prom =
       Option.get (Option.bind (J.member "prometheus" j) J.to_str)
     in
     check_bool "prometheus text exposes the latency histogram" true
       (contains prom "serve_latency_seconds");
     check_bool "metrics payload is structured JSON" true
       (match Option.bind (J.member "metrics" j) (J.member "metrics") with
        | Some (J.List _) -> true
        | _ -> false));
  (* stats: uniform totals, flight occupancy and cache placeholder *)
  match J.parse (handle {|{"v":1,"op":"stats"}|}) with
  | Error _ -> Alcotest.fail "unparsable stats response"
  | Ok j ->
    let int name = Option.bind (J.member name j) J.to_int in
    check_bool "stats counts every request including itself" true
      (match int "requests" with Some n -> n >= 4 | None -> false);
    check_bool "stats counts errors" true
      (match int "errors" with Some n -> n >= 1 | None -> false);
    check_bool "stats reports flight occupancy" true
      (match int "flight_recorded" with Some n -> n >= 3 | None -> false);
    check_bool "stats reports cert counters" true
      (int "certs_checked" = Some 0 && int "certs_rejected" = Some 0);
    check_bool "cache is null when disabled" true
      (J.member "cache" j = Some J.Null)

(* --- flight recorder -------------------------------------------------------- *)

module Flight = Ipet_obs.Flight

let flight_event i =
  { Flight.time = float_of_int i;
    id = Printf.sprintf "req-%d" i;
    op = "analyze";
    root = "main";
    digests = [ "abc" ];
    units_total = 2;
    units_cached = 1;
    units_solved = 1;
    warm_hits = 3;
    pivots = 40;
    certs_checked = 2;
    certs_rejected = 0;
    latency_ms = 1.5;
    error = (if i mod 2 = 0 then None else Some "analysis") }

let test_flight_ring_wrap () =
  let t = Flight.create ~cap:4 () in
  check_int "empty recorder has no events" 0 (List.length (Flight.recent t));
  for i = 0 to 9 do
    Flight.record t (flight_event i)
  done;
  check_int "total counts every record" 10 (Flight.total t);
  let recent = Flight.recent t in
  check_bool "only the last cap events survive, newest first" true
    (List.map fst recent = [ 9; 8; 7; 6 ]);
  check_bool "newest event is the last recorded" true
    ((List.hd recent |> snd).Flight.id = "req-9");
  check_bool "recent ~n clips" true
    (List.map fst (Flight.recent ~n:2 t) = [ 9; 8 ]);
  (* the dump is oldest-first JSONL, one parseable object per line *)
  let lines =
    Flight.dump t |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "dump holds one line per surviving event" 4 (List.length lines);
  List.iter
    (fun line ->
      match J.parse line with
      | Ok (J.Obj _) -> ()
      | _ -> Alcotest.failf "dump line is not a JSON object: %s" line)
    lines;
  (match J.parse (List.hd lines) with
   | Ok j ->
     check_bool "dump is oldest-first" true
       (J.member "id" j = Some (J.Str "req-6"));
     check_bool "error events keep their taxonomy code" true
       (J.member "error" j = None || J.member "error" j = Some (J.Str "analysis"))
   | Error m -> Alcotest.failf "unparsable dump line: %s" m);
  (* write_dump lands the same content on disk *)
  let path = Filename.concat (tmp_dir "serve-flight") "dump.jsonl" in
  Flight.write_dump t path;
  check_string "write_dump writes the dump" (Flight.dump t) (read_file path)

(* --- access log ------------------------------------------------------------- *)

let test_access_log_rotation () =
  let module Al = Ipet_serve.Access_log in
  let dir = tmp_dir "serve-access" in
  let path = Filename.concat dir "access.jsonl" in
  let log = Al.open_ ~path ~cap_bytes:1024 in
  let line i =
    J.to_string
      (J.Obj
         [ ("id", J.Str (Printf.sprintf "req-%03d" i));
           ("pad", J.Str (String.make 80 'x')) ])
  in
  for i = 0 to 29 do
    Al.write log (line i)
  done;
  Al.close log;
  check_bool "current file exists" true (Sys.file_exists path);
  check_bool "rotation produced the .1 generation" true
    (Sys.file_exists (path ^ ".1"));
  let parse_lines p =
    read_file p |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match J.parse l with
           | Ok j -> Option.get (Option.bind (J.member "id" j) J.to_str)
           | Error m -> Alcotest.failf "unparsable access line %S: %s" l m)
  in
  let current = parse_lines path and previous = parse_lines (path ^ ".1") in
  check_bool "both generations hold whole lines" true
    (current <> [] && previous <> []);
  (* the newest entry is always in the current file, and nothing was lost
     across the last rotation boundary *)
  check_string "last write is in the current file" "req-029"
    (List.nth current (List.length current - 1));
  let boundary = List.hd current in
  let last_prev = List.nth previous (List.length previous - 1) in
  check_string "rotation loses no line"
    (Printf.sprintf "req-%03d"
       (int_of_string (String.sub last_prev 4 3) + 1))
    boundary;
  (* reopening appends to the current generation *)
  let log = Al.open_ ~path ~cap_bytes:(1024 * 1024) in
  Al.write log (line 30);
  Al.close log;
  check_string "reopen appends" "req-030"
    (let all = parse_lines path in
     List.nth all (List.length all - 1))

(* --- spawned daemon over a real socket ------------------------------------ *)

let await_file path =
  let rec go tries =
    if Sys.file_exists path then ()
    else if tries = 0 then Alcotest.failf "%s never appeared" path
    else begin
      ignore (Unix.select [] [] [] 0.1);
      go (tries - 1)
    end
  in
  go 100

let test_socket_e2e () =
  (* the test binary lives in _build/default/test, the daemon next door *)
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      "../bin/cinderella.exe"
  in
  let dir = tmp_dir "serve-e2e" in
  let socket = Filename.concat dir "serve.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--socket"; socket; "--cache-dir";
         Filename.concat dir "cache"; "-j"; "1" |]
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      (* idempotent: the normal path has already reaped the daemon *)
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      await_file socket;
      let t = Client.connect socket in
      check_string "handshake" "ok"
        (response_code
           (Option.get (Client.request t {|{"v":1,"op":"hello"}|})));
      (* a malformed request neither kills the daemon nor the connection *)
      check_string "malformed request on a live connection" "proto"
        (response_code (Option.get (Client.request t "garbage")));
      check_string "the same connection still works" "ok"
        (response_code
           (Option.get
              (Client.request t
                 (analyze_request (edit_source 3)
                    ~extra:[ ("annotations", J.Str edit_annotations) ]))));
      Client.close t;
      check_string "shutdown request" "ok"
        (response_code
           (Option.get (Client.one_shot ~socket {|{"v":1,"op":"shutdown"}|})));
      (match Unix.waitpid [] pid with
       | _, Unix.WEXITED 0 -> ()
       | _ -> Alcotest.fail "daemon did not exit cleanly");
      check_bool "socket file was removed" false (Sys.file_exists socket))

(* one daemon session, the same source under both machine models: the
   bounds differ, each machine's warm run is served from its own cache
   entries, and neither machine's cold run ever hits the other's *)
let test_socket_both_machines () =
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      "../bin/cinderella.exe"
  in
  let dir = tmp_dir "serve-two-machines" in
  let socket = Filename.concat dir "serve.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--socket"; socket; "--cache-dir";
         Filename.concat dir "cache"; "-j"; "1" |]
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      await_file socket;
      let t = Client.connect socket in
      let analyze label mach =
        let response =
          Option.get
            (Client.request t
               (analyze_request (edit_source 3)
                  ~extra:
                    [ ("mach", J.Str mach);
                      ("annotations", J.Str edit_annotations) ]))
        in
        check_string (label ^ " analyze succeeds") "ok"
          (response_code response);
        match J.parse response with
        | Ok j ->
          let stat name =
            Option.get
              (Option.bind
                 (Option.bind (J.member "stats" j) (J.member name))
                 J.to_int)
          in
          ( Option.get (J.member "report" j),
            stat "units_cached",
            stat "units_solved" )
        | Error _ -> Alcotest.failf "unparsable %s response" label
      in
      let e32_cold, e32_cold_hits, _ = analyze "e32 cold" "e32" in
      let m7_cold, m7_cold_hits, m7_cold_solved = analyze "m7 cold" "m7" in
      check_bool "the two machines bound the program differently" true
        (bounds_of_report e32_cold <> bounds_of_report m7_cold);
      check_int "e32 cold run hits nothing" 0 e32_cold_hits;
      check_int "m7 cold run never hits the e32 entries" 0 m7_cold_hits;
      check_bool "m7 cold run solves its own units" true (m7_cold_solved > 0);
      let e32_warm, e32_warm_hits, e32_warm_solved =
        analyze "e32 warm" "e32"
      in
      let m7_warm, m7_warm_hits, m7_warm_solved = analyze "m7 warm" "m7" in
      check_string "e32 warm report is byte-identical"
        (J.to_string e32_cold) (J.to_string e32_warm);
      check_string "m7 warm report is byte-identical"
        (J.to_string m7_cold) (J.to_string m7_warm);
      check_bool "e32 warm run is served from its own entries" true
        (e32_warm_hits > 0 && e32_warm_solved = 0);
      check_bool "m7 warm run is served from its own entries" true
        (m7_warm_hits > 0 && m7_warm_solved = 0);
      (* an unknown machine id is a protocol error, not a crash *)
      check_string "unknown machine id" "proto"
        (response_code
           (Option.get
              (Client.request t
                 (analyze_request (edit_source 3)
                    ~extra:
                      [ ("mach", J.Str "z80");
                        ("annotations", J.Str edit_annotations) ]))));
      Client.close t;
      check_string "shutdown request" "ok"
        (response_code
           (Option.get (Client.one_shot ~socket {|{"v":1,"op":"shutdown"}|})));
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "daemon did not exit cleanly")

(* graceful SIGTERM must flush every sink: trace-out, metrics-out, the
   access log and the flight-recorder dump *)
let test_sigterm_flush () =
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      "../bin/cinderella.exe"
  in
  let dir = tmp_dir "serve-sigterm" in
  let socket = Filename.concat dir "serve.sock" in
  let trace_out = Filename.concat dir "trace.json" in
  let metrics_out = Filename.concat dir "metrics.json" in
  let access = Filename.concat dir "access.jsonl" in
  let flight = Filename.concat dir "flight.jsonl" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--socket"; socket; "--cache-dir";
         Filename.concat dir "cache"; "-j"; "1"; "--trace-out"; trace_out;
         "--metrics-out"; metrics_out; "--access-log"; access;
         "--flight-dump"; flight |]
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      await_file socket;
      let response =
        Option.get
          (Client.one_shot ~socket
             (analyze_request (edit_source 3)
                ~extra:
                  [ ("trace", J.Str "sig-1");
                    ("annotations", J.Str edit_annotations) ]))
      in
      check_string "analyze over the socket" "ok" (response_code response);
      check_bool "daemon echoes the trace id" true
        (trace_of response = Some "sig-1");
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
       | _, Unix.WEXITED 0 -> ()
       | _ -> Alcotest.fail "daemon did not exit cleanly on SIGTERM");
      check_bool "socket file was removed" false (Sys.file_exists socket);
      (* every sink must exist and parse *)
      let jsonl_ids path =
        read_file path |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
        |> List.map (fun l ->
               match J.parse l with
               | Ok j -> Option.bind (J.member "id" j) J.to_str
               | Error m ->
                 Alcotest.failf "unparsable line in %s: %s" path m)
      in
      check_bool "access log recorded the request" true
        (List.mem (Some "sig-1") (jsonl_ids access));
      check_bool "flight dump recorded the request" true
        (List.mem (Some "sig-1") (jsonl_ids flight));
      (match J.parse (read_file metrics_out) with
       | Ok j ->
         check_bool "metrics-out is a versioned document" true
           (J.member "version" j = Some (J.Int 1))
       | Error m -> Alcotest.failf "unparsable metrics-out: %s" m);
      match J.parse (read_file trace_out) with
      | Ok j ->
        check_bool "trace-out holds trace events" true
          (match J.member "traceEvents" j with
           | Some (J.List _) -> true
           | _ -> false)
      | Error m -> Alcotest.failf "unparsable trace-out: %s" m)

let suite =
  [ Alcotest.test_case "json: compound round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: non-finite floats print as null" `Quick
      test_json_nonfinite;
    Alcotest.test_case "json: malformed inputs are rejected" `Quick
      test_json_errors;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_single_edit_invalidation;
    QCheck_alcotest.to_alcotest prop_mach_changes_every_key;
    Alcotest.test_case "key: callee intervals are hashed" `Quick
      test_key_callee_interval;
    Alcotest.test_case "incremental bounds match the monolithic analysis"
      `Quick test_matches_monolithic;
    Alcotest.test_case "functionality constraints fall back to one unit"
      `Quick test_functional_fallback;
    Alcotest.test_case "cold and warm reports are byte-identical" `Quick
      test_cold_warm_identical;
    Alcotest.test_case "a one-function edit re-solves one function" `Quick
      test_one_function_edit;
    Alcotest.test_case "cache: LRU eviction and restart" `Quick
      test_lru_eviction;
    Alcotest.test_case "cache: orphaned temp files are swept on open" `Quick
      test_tmp_sweep;
    Alcotest.test_case "certificates: warm hits re-prove, tampering heals"
      `Quick test_cert_self_heal;
    Alcotest.test_case "protocol: every failure is a structured error" `Quick
      test_protocol_errors;
    Alcotest.test_case "protocol: hello, analyze, shutdown" `Quick
      test_protocol_requests;
    Alcotest.test_case "protocol: trace ids echo on every outcome" `Quick
      test_trace_roundtrip;
    Alcotest.test_case "protocol: metrics, recent and stats ops" `Quick
      test_observability_ops;
    Alcotest.test_case "flight recorder: ring wrap and JSONL dump" `Quick
      test_flight_ring_wrap;
    Alcotest.test_case "access log: size rotation keeps whole lines" `Quick
      test_access_log_rotation;
    Alcotest.test_case "daemon: socket round trip" `Quick test_socket_e2e;
    Alcotest.test_case "daemon: both machines in one session" `Quick
      test_socket_both_machines;
    Alcotest.test_case "daemon: SIGTERM flushes every sink" `Quick
      test_sigterm_flush ]
