(* The soundness fuzzing harness: corpus replay, deterministic generation,
   a live fuzz run, the shrinker, and the ALU differential property that
   keeps the constant folder and the simulator in lock-step. *)

module Rng = Ipet_fuzz.Rng
module Gen = Ipet_fuzz.Gen
module Render = Ipet_fuzz.Render
module Oracle = Ipet_fuzz.Oracle
module Shrink = Ipet_fuzz.Shrink
module Driver = Ipet_fuzz.Driver
module Ast = Ipet_lang.Ast
module I = Ipet_isa.Instr
module V = Ipet_isa.Value
module Icache = Ipet_machine.Icache
module Machine = Ipet_machine.Machine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- corpus replay ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

(* replay metadata lives in leading comment lines: [// cache: SIZE LINE
   PENALTY] selects the cache the failure needed, [// mach: ID] the
   machine model; anything unstated falls back to the machine's own
   defaults (e32, its i960KB cache) *)
let corpus_header source =
  String.split_on_char '\n' source |> List.filteri (fun i _ -> i < 4)

let corpus_cache source =
  List.find_map
    (fun line ->
      try
        Scanf.sscanf line "// cache: %d %d %d"
          (fun size_bytes line_bytes miss_penalty ->
            Some { Icache.size_bytes; line_bytes; miss_penalty })
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    (corpus_header source)

let corpus_mach source =
  List.find_map
    (fun line ->
      try
        Scanf.sscanf line "// mach: %s" (fun id ->
            match Machine.of_string id with Ok m -> Some m | Error _ -> None)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    (corpus_header source)
  |> Option.value ~default:Machine.e32

(* cwd is test/ under [dune runtest] but the project root under
   [dune exec test/test_main.exe] *)
let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mc")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat dir f)

let replay ~mach path source =
  match Oracle.check ~mach ?cache:(corpus_cache source) source with
  | Oracle.Pass _ -> ()
  | Oracle.Fail f ->
    Alcotest.fail
      (Printf.sprintf "%s on %s: %s: %s" path (Machine.id mach)
         (Oracle.kind_name f.Oracle.kind) f.Oracle.detail)

let test_corpus_replay () =
  let files = corpus_files () in
  check_bool "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      let source = read_file path in
      replay ~mach:(corpus_mach source) path source)
    files

(* every finding — whatever machine it was found on — must also hold as a
   passing case on the other target: the oracle's invariants are
   machine-independent *)
let test_corpus_replay_m7 () =
  List.iter
    (fun path -> replay ~mach:Machine.m7 path (read_file path))
    (corpus_files ())

(* --- deterministic generation -------------------------------------------- *)

(* splitmix64 reference values: the stream must be identical on every OCaml
   version, or printed seeds would not replay across the CI matrix *)
let test_rng_reference_stream () =
  let r = Rng.create 1 in
  List.iter
    (fun expected ->
      check_bool "splitmix64 reference" true (Rng.next64 r = expected))
    [ 0xc0e16b163a85a4dcL; 0x890acd8dd443c47cL; 0xb3889d8a6dc47761L;
      0x6a0398e528f0ae6aL ]

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.range r 3 9 in
    check_bool "range in bounds" true (v >= 3 && v <= 9);
    let w = Rng.int r 5 in
    check_bool "int in bounds" true (w >= 0 && w < 5)
  done

let test_generation_deterministic () =
  let a = Gen.case 42 and b = Gen.case 42 in
  check_string "same seed, same program" (Render.program a.Gen.prog)
    (Render.program b.Gen.prog);
  check_bool "same seed, same cache" true (a.Gen.cache = b.Gen.cache);
  let c = Gen.case 43 in
  check_bool "different seed, different program" true
    (Render.program a.Gen.prog <> Render.program c.Gen.prog)

(* one parse canonicalizes (the parser folds minus into integer literals);
   after that, render/reparse is a fixpoint — shrunk programs printed in a
   report reproduce the same AST when replayed from the file *)
let test_render_reparse_fixpoint () =
  for seed = 1 to 10 do
    let case = Gen.case seed in
    let ast1, _ =
      Ipet_lang.Frontend.parse_and_check (Render.program case.Gen.prog)
    in
    let src = Render.program ast1 in
    let ast2, _ = Ipet_lang.Frontend.parse_and_check src in
    check_string
      (Printf.sprintf "seed %d render/reparse fixpoint" seed)
      src (Render.program ast2)
  done

(* --- the oracle classifies hand-made failures ----------------------------- *)

let test_oracle_classifies () =
  (match Oracle.check "int main() { return (1 / 0); }" with
   | Oracle.Fail { Oracle.kind = Oracle.Sim_crash; _ } -> ()
   | Oracle.Fail f -> Alcotest.fail ("expected sim-crash, got " ^ Oracle.kind_name f.Oracle.kind)
   | Oracle.Pass _ -> Alcotest.fail "expected sim-crash, got pass");
  (match Oracle.check "int g0 = 3;\nint main() { while (g0) { g0 = g0 - 1; } return 0; }" with
   | Oracle.Fail { Oracle.kind = Oracle.Analysis_reject; _ } -> ()
   | Oracle.Fail f -> Alcotest.fail ("expected analysis-reject, got " ^ Oracle.kind_name f.Oracle.kind)
   | Oracle.Pass _ -> Alcotest.fail "expected analysis-reject, got pass");
  (match Oracle.check "int main() { return 4294967296; }" with
   | Oracle.Fail { Oracle.kind = Oracle.Frontend_reject; _ } -> ()
   | Oracle.Fail f -> Alcotest.fail ("expected frontend-reject, got " ^ Oracle.kind_name f.Oracle.kind)
   | Oracle.Pass _ -> Alcotest.fail "expected frontend-reject, got pass")

(* --- a short live run ----------------------------------------------------- *)

let fuzz_run ~mach ~seed ~iters =
  let outcome = Driver.run ~mach ~shrink:false ~seed ~iters () in
  (match outcome.Driver.report with
   | None -> ()
   | Some r ->
     Alcotest.fail
       (Printf.sprintf "seed %d on %s: %s: %s" r.Driver.case_seed
          (Machine.id mach)
          (Oracle.kind_name r.Driver.failure.Oracle.kind)
          r.Driver.failure.Oracle.detail));
  check_int "all iterations ran" iters outcome.Driver.iters_run;
  check_int "all passed" iters outcome.Driver.passed

let test_fuzz_run () = fuzz_run ~mach:Machine.e32 ~seed:90001 ~iters:25

(* the same seeds generate the same programs; only the oracle's machine
   changes, so this exercises the full m7 analysis+sim+cert pipeline *)
let test_fuzz_run_m7 () = fuzz_run ~mach:Machine.m7 ~seed:90001 ~iters:25

(* --- shrinking ------------------------------------------------------------ *)

(* shrink against a synthetic failure class: "main assigns to global g0".
   The shrinker must reach a minimal program while preserving the property,
   strictly decreasing its measure on every accepted edit. *)
let test_shrinker_minimizes () =
  let rec assigns_g0_stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.Assign (Ast.Lvar "g0", _) -> true
    | Ast.If (_, t, e) -> List.exists assigns_g0_stmt t || List.exists assigns_g0_stmt e
    | Ast.While (_, b) | Ast.Do_while (b, _) | Ast.For (_, _, _, b)
    | Ast.Block b -> List.exists assigns_g0_stmt b
    | _ -> false
  in
  let assigns_g0 (p : Ast.program) =
    List.exists (fun (f : Ast.func) -> List.exists assigns_g0_stmt f.Ast.body)
      p.Ast.funcs
  in
  (* find a generated program with the property *)
  let rec find seed =
    if seed > 400 then Alcotest.fail "no generated program assigns g0"
    else
      let case = Gen.case seed in
      if assigns_g0 case.Gen.prog then case.Gen.prog else find (seed + 1)
  in
  let original = find 1 in
  let small = Shrink.minimize ~check:assigns_g0 original in
  check_bool "shrunk program keeps the property" true (assigns_g0 small);
  check_bool "shrunk program is no larger" true
    (Shrink.prog_size small <= Shrink.prog_size original);
  (* the minimal such program is tiny: main plus the one assignment *)
  check_bool "shrunk to a handful of nodes" true (Shrink.prog_size small <= 8)

(* --- ALU differential: folder vs simulator -------------------------------- *)

let all_ops =
  [ I.Add; I.Sub; I.Mul; I.Div; I.Rem; I.And; I.Or; I.Xor; I.Shl; I.Shr ]

let agree op a b =
  let folded = Ipet_lang.Optimize.fold_alu op a b in
  let interpreted =
    match Ipet_sim.Interp.alu op a b with
    | v -> Some v
    | exception Ipet_sim.Interp.Runtime_error _ -> None
  in
  if folded <> interpreted then
    Alcotest.failf "fold_alu and Interp.alu disagree on %s %d %d: %s vs %s"
      (match op with
       | I.Add -> "add" | I.Sub -> "sub" | I.Mul -> "mul" | I.Div -> "div"
       | I.Rem -> "rem" | I.And -> "and" | I.Or -> "or" | I.Xor -> "xor"
       | I.Shl -> "shl" | I.Shr -> "shr")
      a b
      (match folded with None -> "fold:none" | Some v -> string_of_int v)
      (match interpreted with None -> "interp:raise" | Some v -> string_of_int v)

let interesting_operands =
  [ 0; 1; -1; 2; -2; 31; 32; 33; 62; 63; 64; 65; 127; 128;
    V.max_int32; V.max_int32 - 1; V.min_int32; V.min_int32 + 1 ]

let test_alu_differential_exhaustive_shifts () =
  (* every shift amount 0..63 (and past 63 via the interesting operands),
     for every interesting left operand *)
  List.iter
    (fun a ->
      for s = 0 to 63 do
        agree I.Shl a s;
        agree I.Shr a s
      done)
    interesting_operands;
  (* all interesting pairs for every operator, min_int32 / -1 included *)
  List.iter
    (fun op ->
      List.iter
        (fun a -> List.iter (fun b -> agree op a b) interesting_operands)
        interesting_operands)
    all_ops

let prop_alu_differential =
  QCheck.Test.make ~name:"fold_alu agrees with Interp.alu on random operands"
    ~count:2000
    QCheck.(triple (int_bound 9) int int)
    (fun (opi, a, b) ->
      let op = List.nth all_ops opi in
      let a = V.wrap32 a and b = V.wrap32 b in
      agree op a b;
      true)

(* results of both ALUs always stay in 32-bit range *)
let prop_alu_in_range =
  QCheck.Test.make ~name:"ALU results are 32-bit" ~count:2000
    QCheck.(triple (int_bound 9) int int)
    (fun (opi, a, b) ->
      let op = List.nth all_ops opi in
      let a = V.wrap32 a and b = V.wrap32 b in
      match Ipet_sim.Interp.alu op a b with
      | v -> v >= V.min_int32 && v <= V.max_int32
      | exception Ipet_sim.Interp.Runtime_error _ -> true)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_alu_differential; prop_alu_in_range ]

let suite =
  [ ("corpus replay", `Quick, test_corpus_replay);
    ("corpus replay on m7", `Quick, test_corpus_replay_m7);
    ("splitmix64 reference stream", `Quick, test_rng_reference_stream);
    ("rng ranges", `Quick, test_rng_ranges);
    ("deterministic generation", `Quick, test_generation_deterministic);
    ("render/reparse fixpoint", `Quick, test_render_reparse_fixpoint);
    ("oracle classification", `Quick, test_oracle_classifies);
    ("25-case fuzz run", `Slow, test_fuzz_run);
    ("25-case fuzz run on m7", `Slow, test_fuzz_run_m7);
    ("shrinker minimizes", `Quick, test_shrinker_minimizes);
    ("ALU differential, exhaustive shifts", `Quick,
     test_alu_differential_exhaustive_shifts) ]
  @ props
