(* Micro-architecture model tests: i-cache, pipeline hazards, cost bounds. *)

module I = Ipet_isa.Instr
module P = Ipet_isa.Prog
module Layout = Ipet_isa.Layout
module Icache = Ipet_machine.Icache
module Timing = Ipet_machine.Timing
module Pipeline = Ipet_machine.Pipeline
module Cost = Ipet_machine.Cost

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- icache -------------------------------------------------------------- *)

let small_cache = { Icache.size_bytes = 64; line_bytes = 16; miss_penalty = 8 }

let test_cache_hit_after_miss () =
  let c = Icache.create small_cache in
  check_bool "first access misses" false (Icache.access c 0);
  check_bool "same line hits" true (Icache.access c 4);
  check_bool "line end hits" true (Icache.access c 15);
  check_bool "next line misses" false (Icache.access c 16);
  check_int "hits" 2 (Icache.hits c);
  check_int "misses" 2 (Icache.misses c)

let test_cache_conflict () =
  let c = Icache.create small_cache in
  (* 64-byte cache, 16-byte lines -> 4 slots; addresses 0 and 64 conflict *)
  check_bool "miss 0" false (Icache.access c 0);
  check_bool "conflict evicts" false (Icache.access c 64);
  check_bool "0 evicted" false (Icache.access c 0);
  check_bool "48 independent" false (Icache.access c 48);
  check_bool "48 hits now" true (Icache.access c 48)

let test_cache_flush () =
  let c = Icache.create small_cache in
  ignore (Icache.access c 0);
  check_bool "hit before flush" true (Icache.lookup c 0);
  Icache.flush c;
  check_bool "miss after flush" false (Icache.lookup c 0)

let test_cache_validation () =
  check_bool "bad line size" true
    (try ignore (Icache.create { small_cache with Icache.line_bytes = 12 }); false
     with Invalid_argument _ -> true);
  check_bool "bad capacity" true
    (try ignore (Icache.create { small_cache with Icache.size_bytes = 40 }); false
     with Invalid_argument _ -> true)

let test_lines_spanned () =
  check_int "one instr" 1 (Icache.lines_spanned small_cache ~addr:0 ~size:4);
  check_int "full line" 1 (Icache.lines_spanned small_cache ~addr:0 ~size:16);
  check_int "crosses boundary" 2 (Icache.lines_spanned small_cache ~addr:12 ~size:8);
  check_int "three lines" 3 (Icache.lines_spanned small_cache ~addr:8 ~size:40);
  check_int "empty" 0 (Icache.lines_spanned small_cache ~addr:8 ~size:0)

(* --- timing / pipeline ---------------------------------------------------- *)

let test_timing_orders () =
  let add = I.Alu (I.Add, 0, I.Reg 1, I.Reg 2) in
  let mul = I.Alu (I.Mul, 0, I.Reg 1, I.Reg 2) in
  let div = I.Alu (I.Div, 0, I.Reg 1, I.Reg 2) in
  let fdiv = I.Fpu (I.Fdiv, 0, I.Reg 1, I.Reg 2) in
  check_bool "add < mul < div" true (Timing.issue add < Timing.issue mul);
  check_bool "mul < div" true (Timing.issue mul < Timing.issue div);
  check_bool "div <= fdiv" true (Timing.issue div <= Timing.issue fdiv)

let test_term_bounds_enclose_actual () =
  List.iter
    (fun term ->
      let best, worst = Timing.term_bounds term in
      List.iter
        (fun taken ->
          let t = Timing.term_actual term ~taken in
          check_bool "within bounds" true (best <= t && t <= worst))
        [ true; false ])
    [ I.Jump 0; I.Branch (0, 1, 2); I.Return None ]

let test_load_use_stall () =
  let load = I.Load (3, { I.base = I.Abs 0; offset = 0; index = None }) in
  let use = I.Alu (I.Add, 4, I.Reg 3, I.Imm 1) in
  let no_use = I.Alu (I.Add, 4, I.Reg 5, I.Imm 1) in
  check_int "stall" Timing.load_use_stall (Pipeline.stall_after load use);
  check_int "no stall" 0 (Pipeline.stall_after load no_use);
  check_int "alu-alu no stall" 0 (Pipeline.stall_after use no_use);
  check_int "block stalls" Timing.load_use_stall
    (Pipeline.block_stalls [| load; use; no_use |])

let test_load_use_through_address () =
  (* the stall also applies when the loaded register is an address index *)
  let load = I.Load (3, { I.base = I.Abs 0; offset = 0; index = None }) in
  let use = I.Load (4, { I.base = I.Abs 8; offset = 0; index = Some (I.Reg 3) }) in
  check_int "address-use stalls" Timing.load_use_stall (Pipeline.stall_after load use)

(* --- cost bounds ----------------------------------------------------------- *)

let block instrs term = { P.id = 0; instrs = Array.of_list instrs; term; src_line = 1 }

let one_block_prog instrs term =
  { P.funcs =
      [| { P.name = "f"; nparams = 0; frame_words = 0;
           blocks = [| block instrs term |] } |];
    P.globals = [];
    P.globals_words = 0 }

let test_cost_ordering () =
  let instrs =
    [ I.Mov (0, I.Imm 1);
      I.Load (1, { I.base = I.Abs 0; offset = 0; index = None });
      I.Alu (I.Add, 2, I.Reg 1, I.Reg 0) ]
  in
  let prog = one_block_prog instrs (I.Branch (2, 0, 0)) in
  let layout = Layout.make prog in
  let costs = Cost.func_bounds Icache.i960kb layout prog.P.funcs.(0) in
  let b = costs.(0) in
  check_bool "best <= warm worst" true (b.Cost.best <= b.Cost.worst_warm);
  check_bool "warm worst <= worst" true (b.Cost.worst_warm < b.Cost.worst);
  (* difference between worst and warm worst is exactly the line fills *)
  let lines = Icache.lines_spanned Icache.i960kb ~addr:0 ~size:(4 * 4) in
  check_int "miss component" (lines * Icache.i960kb.Icache.miss_penalty)
    (b.Cost.worst - b.Cost.worst_warm)

let test_cost_includes_stall () =
  let load = I.Load (1, { I.base = I.Abs 0; offset = 0; index = None }) in
  let use = I.Alu (I.Add, 2, I.Reg 1, I.Imm 1) in
  let prog_hazard = one_block_prog [ load; use ] (I.Return None) in
  let prog_clean =
    one_block_prog [ load; I.Alu (I.Add, 2, I.Reg 9, I.Imm 1) ] (I.Return None)
  in
  let cost p =
    (Cost.func_bounds Icache.i960kb (Layout.make p) p.P.funcs.(0)).(0)
  in
  check_int "hazard adds exactly the stall" Timing.load_use_stall
    ((cost prog_hazard).Cost.best - (cost prog_clean).Cost.best)

let test_layout_addresses () =
  let f1_block = block [ I.Mov (0, I.Imm 1) ] (I.Return None) in
  let prog =
    { P.funcs =
        [| { P.name = "a"; nparams = 0; frame_words = 0; blocks = [| f1_block |] };
           { P.name = "b"; nparams = 0; frame_words = 0; blocks = [| f1_block |] } |];
      P.globals = [];
      P.globals_words = 0 }
  in
  let layout = Layout.make prog in
  check_int "a at 0" 0 (Layout.block_addr layout ~func:"a" ~block:0);
  (* block 'a' has 2 instructions (mov + ret) = 8 bytes *)
  check_int "b after a" 8 (Layout.block_addr layout ~func:"b" ~block:0);
  check_int "code size" 16 (Layout.code_size layout);
  check_bool "unknown func" true
    (try ignore (Layout.func_addr layout "zzz"); false with Not_found -> true)

(* property: simulated per-run cost of a straight-line block stays within
   the analytical bounds for random instruction sequences *)
let random_instr rng =
  match Random.State.int rng 6 with
  | 0 -> I.Mov (Random.State.int rng 8, I.Imm (Random.State.int rng 100))
  | 1 -> I.Alu (I.Add, Random.State.int rng 8, I.Reg (Random.State.int rng 8), I.Imm 1)
  | 2 -> I.Alu (I.Mul, Random.State.int rng 8, I.Reg (Random.State.int rng 8), I.Imm 3)
  | 3 -> I.Load (Random.State.int rng 8,
                 { I.base = I.Abs (Random.State.int rng 4); offset = 0; index = None })
  | 4 -> I.Store (I.Reg (Random.State.int rng 8),
                  { I.base = I.Abs (Random.State.int rng 4); offset = 0; index = None })
  | _ -> I.Icmp (I.Clt, Random.State.int rng 8, I.Reg (Random.State.int rng 8), I.Imm 5)

let prop_simulated_block_within_bounds =
  QCheck.Test.make ~name:"simulated block cost within analytical bounds" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 1 12))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed |] in
      let instrs = List.init len (fun _ -> random_instr rng) in
      let prog = one_block_prog instrs (I.Return (Some (I.Imm 0))) in
      let prog = { prog with P.globals_words = 8 } in
      let bounds =
        (Cost.func_bounds Icache.i960kb (Layout.make prog) prog.P.funcs.(0)).(0)
      in
      let m = Ipet_sim.Interp.create prog ~init:[] in
      Ipet_sim.Interp.flush_cache m;
      ignore (Ipet_sim.Interp.call m "f" []);
      let cold = Ipet_sim.Interp.cycles m in
      Ipet_sim.Interp.reset_stats m;
      ignore (Ipet_sim.Interp.call m "f" []);
      let warm = Ipet_sim.Interp.cycles m in
      bounds.Cost.best <= warm && warm <= bounds.Cost.worst_warm
      && bounds.Cost.best <= cold && cold <= bounds.Cost.worst)

let props = List.map QCheck_alcotest.to_alcotest [ prop_simulated_block_within_bounds ]

let suite =
  [ ("icache hit after miss", `Quick, test_cache_hit_after_miss);
    ("icache conflict eviction", `Quick, test_cache_conflict);
    ("icache flush", `Quick, test_cache_flush);
    ("icache config validation", `Quick, test_cache_validation);
    ("lines spanned", `Quick, test_lines_spanned);
    ("timing orders", `Quick, test_timing_orders);
    ("terminator bounds enclose actual", `Quick, test_term_bounds_enclose_actual);
    ("load-use stall", `Quick, test_load_use_stall);
    ("load-use through address", `Quick, test_load_use_through_address);
    ("cost ordering", `Quick, test_cost_ordering);
    ("cost includes stall", `Quick, test_cost_includes_stall);
    ("layout addresses", `Quick, test_layout_addresses) ]
  @ props

(* --- data cache -------------------------------------------------------------- *)

let dcache_cfg = { Icache.size_bytes = 256; line_bytes = 16; miss_penalty = 6 }

let test_dcache_enclosure () =
  (* with the data cache enabled everywhere, the suite invariant must hold *)
  List.iter
    (fun name ->
      let bench = Ipet_suite.Suite.find name in
      let row = Ipet_suite.Experiments.run ~dcache:dcache_cfg bench in
      let e = row.Ipet_suite.Experiments.estimated in
      let m = row.Ipet_suite.Experiments.measured in
      check_bool (name ^ ": measured within estimated (dcache)") true
        (e.Ipet_suite.Experiments.lo <= m.Ipet_suite.Experiments.lo
         && m.Ipet_suite.Experiments.hi <= e.Ipet_suite.Experiments.hi))
    [ "check_data"; "piksrt"; "matgen" ]

let test_dcache_speeds_hot_loops () =
  (* a loop re-reading the same small array: the cached run beats the flat
     model once warm *)
  let src = "int buf[8];\nint f(int n) { int i; int s; s = 0; \
             for (i = 0; i < n; i = i + 1) s = s + buf[i & 7]; return s; }"
  in
  let compiled = Ipet_lang.Frontend.compile_string_exn src in
  let run dcache =
    let m = Ipet_sim.Interp.create ?dcache compiled.Ipet_lang.Compile.prog
        ~init:compiled.Ipet_lang.Compile.init_data
    in
    ignore (Ipet_sim.Interp.call m "f" [ Ipet_isa.Value.Vint 500 ]);
    Ipet_sim.Interp.cycles m
  in
  let flat = run None in
  let cached = run (Some dcache_cfg) in
  check_bool "cached run faster on a hot array" true (cached < flat)

let test_dcache_stats () =
  let src = "int buf[64];\nint f() { int i; int s; s = 0; \
             for (i = 0; i < 64; i = i + 1) s = s + buf[i]; return s; }"
  in
  let compiled = Ipet_lang.Frontend.compile_string_exn src in
  let m = Ipet_sim.Interp.create ~dcache:dcache_cfg compiled.Ipet_lang.Compile.prog
      ~init:compiled.Ipet_lang.Compile.init_data
  in
  ignore (Ipet_sim.Interp.call m "f" []);
  (* 64 words = 256 bytes = 16 lines: one miss per line, 3 hits per line *)
  check_int "dcache misses" 16 (Ipet_sim.Interp.dcache_misses m);
  check_int "dcache hits" 48 (Ipet_sim.Interp.dcache_hits m)

let suite =
  suite
  @ [ ("dcache enclosure", `Slow, test_dcache_enclosure);
      ("dcache speeds hot loops", `Quick, test_dcache_speeds_hot_loops);
      ("dcache stats", `Quick, test_dcache_stats) ]

(* --- machine models -------------------------------------------------------- *)

module Machine = Ipet_machine.Machine
module E = Ipet_suite.Experiments
module Suite = Ipet_suite.Suite
module Bspec = Ipet_suite.Bspec

(* the cross-target differential runs over the paper's set AND the
   Malardalen-style extension — every benchmark the repo knows *)
let all_benchmarks = Suite.all @ Suite.extended

let test_machine_of_string () =
  List.iter
    (fun m ->
      match Machine.of_string (Machine.id m) with
      | Ok m' -> check_bool (Machine.id m ^ " round trips") true (m' == m)
      | Error e -> Alcotest.fail e)
    Machine.all;
  check_bool "unknown machine rejected" true
    (match Machine.of_string "z80" with Ok _ -> false | Error _ -> true)

let test_e32_is_the_historical_model () =
  (* the default machine must delegate to Timing/Pipeline verbatim: the
     byte-identity of every seed golden rests on it *)
  let (module M : Machine.MACHINE) = Machine.e32 in
  let instrs =
    [ I.Alu (I.Add, 0, I.Reg 1, I.Reg 2);
      I.Alu (I.Mul, 0, I.Reg 1, I.Reg 2);
      I.Alu (I.Div, 0, I.Reg 1, I.Reg 2);
      I.Fpu (I.Fdiv, 0, I.Reg 1, I.Reg 2);
      I.Load (3, { I.base = I.Abs 0; offset = 0; index = None });
      I.Store (I.Reg 1, { I.base = I.Abs 0; offset = 0; index = None });
      I.Mov (0, I.Imm 7);
      I.Call (Some 0, "g", []) ]
  in
  List.iter
    (fun i ->
      check_int "e32 issue = Timing.issue" (Timing.issue i)
        (M.issue ~dcache:false i))
    instrs;
  check_bool "e32 fetch is the i960KB cache" true (M.fetch = Icache.i960kb);
  List.iter
    (fun t ->
      check_bool "e32 term bounds = Timing.term_bounds" true
        (M.term_bounds t = Timing.term_bounds t))
    [ I.Jump 0; I.Branch (0, 1, 2); I.Return None ]

let test_m7_timings () =
  let (module M7 : Machine.MACHINE) = Machine.m7 in
  let (module E32 : Machine.MACHINE) = Machine.e32 in
  let mul = I.Alu (I.Mul, 0, I.Reg 1, I.Reg 2) in
  let div = I.Alu (I.Div, 0, I.Reg 1, I.Reg 2) in
  let fdiv = I.Fpu (I.Fdiv, 0, I.Reg 1, I.Reg 2) in
  check_int "m7 single-cycle multiplier" 1 (M7.issue ~dcache:false mul);
  check_bool "m7 mul faster than e32 mul" true
    (M7.issue ~dcache:false mul < E32.issue ~dcache:false mul);
  check_bool "m7 div still slow" true (M7.issue ~dcache:false div > 1);
  check_bool "div <= fdiv on m7" true
    (M7.issue ~dcache:false div <= M7.issue ~dcache:false fdiv);
  (* terminator bounds enclose the actuals on every machine *)
  List.iter
    (fun (m : Machine.t) ->
      let (module M : Machine.MACHINE) = m in
      List.iter
        (fun term ->
          let best, worst = M.term_bounds term in
          List.iter
            (fun taken ->
              let t = M.term_actual term ~taken in
              check_bool (Machine.id m ^ ": term within bounds") true
                (best <= t && t <= worst))
            [ true; false ])
        [ I.Jump 0; I.Branch (0, 1, 2); I.Return None ])
    Machine.all

let test_m7_prefetch_buffer () =
  (* the m7 "cache" is a 1-line prefetch buffer — a degenerate but valid
     Icache configuration, so all the geometry machinery applies *)
  let cfg = Machine.fetch Machine.m7 in
  let c = Icache.create cfg in
  check_int "one slot" (fst (Icache.slot_of cfg 0))
    (fst (Icache.slot_of cfg cfg.Icache.line_bytes));
  check_bool "first access misses" false (Icache.access c 0);
  check_bool "same line hits" true (Icache.access c 4);
  check_bool "next line misses and evicts" false
    (Icache.access c cfg.Icache.line_bytes);
  check_bool "previous line gone" false (Icache.access c 0)

let test_resident_ok () =
  let (module E32 : Machine.MACHINE) = Machine.e32 in
  let (module M7 : Machine.MACHINE) = Machine.m7 in
  let e32_fetch = Machine.fetch Machine.e32 in
  let m7_fetch = Machine.fetch Machine.m7 in
  (* e32: anything that fits in the cache capacity is resident *)
  check_bool "e32: fits in capacity" true
    (E32.resident_ok ~fetch:e32_fetch ~lo:0 ~hi:e32_fetch.Icache.size_bytes);
  check_bool "e32: one byte over" false
    (E32.resident_ok ~fetch:e32_fetch ~lo:0
       ~hi:(e32_fetch.Icache.size_bytes + 1));
  (* m7: only a region inside one aligned line survives the 1-line buffer *)
  check_bool "m7: inside one line" true
    (M7.resident_ok ~fetch:m7_fetch ~lo:4 ~hi:m7_fetch.Icache.line_bytes);
  check_bool "m7: exactly one full line" true
    (M7.resident_ok ~fetch:m7_fetch ~lo:0 ~hi:m7_fetch.Icache.line_bytes);
  check_bool "m7: straddles a line boundary" false
    (M7.resident_ok ~fetch:m7_fetch ~lo:(m7_fetch.Icache.line_bytes - 4)
       ~hi:(m7_fetch.Icache.line_bytes + 4));
  check_bool "m7: empty region" false
    (M7.resident_ok ~fetch:m7_fetch ~lo:8 ~hi:8)

let test_machine_stall_tables () =
  let load = I.Load (3, { I.base = I.Abs 0; offset = 0; index = None }) in
  let use = I.Alu (I.Add, 4, I.Reg 3, I.Imm 1) in
  let no_use = I.Alu (I.Add, 4, I.Reg 5, I.Imm 1) in
  check_int "e32 load-use stall" 1
    (Machine.block_stalls Machine.e32 [| load; use |]);
  check_int "m7 load-use stall is deeper" 2
    (Machine.block_stalls Machine.m7 [| load; use |]);
  check_int "m7 independent pair" 0
    (Machine.block_stalls Machine.m7 [| load; no_use |]);
  let table = Machine.stall_table Machine.m7 [| load; use; no_use |] in
  check_int "stall charged on the use" 2 table.(1);
  check_int "none on the tail" 0 table.(2)

(* regression for the latent-assumption audit: the line-split refetch
   charge in [Cost.block_bounds] and the decoded slots in [Interp] must
   follow the machine's own geometry, not the i960KB constants *)
let test_cost_follows_machine_geometry () =
  let instrs =
    [ I.Mov (0, I.Imm 1);
      I.Load (1, { I.base = I.Abs 0; offset = 0; index = None });
      I.Alu (I.Add, 2, I.Reg 1, I.Reg 0) ]
  in
  let prog = one_block_prog instrs (I.Branch (2, 0, 0)) in
  let layout = Layout.make prog in
  let m7_fetch = Machine.fetch Machine.m7 in
  let b =
    (Cost.func_bounds ~mach:Machine.m7 m7_fetch layout prog.P.funcs.(0)).(0)
  in
  (* worst - worst_warm is exactly the m7 line fills at the m7 penalty *)
  let lines = Icache.lines_spanned m7_fetch ~addr:0 ~size:(4 * 4) in
  check_int "m7 miss component" (lines * m7_fetch.Icache.miss_penalty)
    (b.Cost.worst - b.Cost.worst_warm);
  (* and the explicit e32 machine reproduces the historical bounds *)
  let default_b =
    (Cost.func_bounds Icache.i960kb layout prog.P.funcs.(0)).(0)
  in
  let e32_b =
    (Cost.func_bounds ~mach:Machine.e32 Icache.i960kb layout
       prog.P.funcs.(0)).(0)
  in
  check_bool "explicit e32 = default cost bounds" true (default_b = e32_b)

let test_sim_follows_machine () =
  (* the same program takes different cycle counts on the two machines,
     and the explicit-e32 simulator is the default simulator *)
  let src =
    "int f(int n) { int i; int s; s = 0; \
     for (i = 0; i < n; i = i + 1) s = s + i * 3; return s; }"
  in
  let compiled = Ipet_lang.Frontend.compile_string_exn src in
  let cycles mach =
    let m =
      Ipet_sim.Interp.create ?mach compiled.Ipet_lang.Compile.prog
        ~init:compiled.Ipet_lang.Compile.init_data
    in
    ignore (Ipet_sim.Interp.call m "f" [ Ipet_isa.Value.Vint 50 ]);
    Ipet_sim.Interp.cycles m
  in
  check_int "explicit e32 = default sim" (cycles None)
    (cycles (Some Machine.e32));
  (* not necessarily faster — the 1-line prefetch buffer refetches loop
     bodies the i960KB cache would hold — but decidedly not the same *)
  check_bool "m7 timing model differs from e32" true
    (cycles (Some Machine.m7) <> cycles None)

(* --- cross-target differential over the full benchmark set ---------------- *)

let e32_rows = lazy (E.run_all ~mach:Machine.e32 ())
let m7_rows = lazy (E.run_all ~mach:Machine.m7 ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* same cwd dodge as [test_golden.golden_dir] *)
let golden_dir () =
  if Sys.file_exists "golden" then "golden"
  else Filename.concat "test" "golden"

let check_table ~golden rendered =
  let expected = read_file (Filename.concat (golden_dir ()) golden) in
  if not (String.equal expected rendered) then
    Alcotest.failf
      "%s differs from the blessed table. If the change is intended, \
       regenerate with: dune exec test/bless.exe -- --mach m7"
      golden

let test_e32_tables_byte_identical () =
  (* an explicit --mach e32 run must reproduce the seed goldens bytewise *)
  let rows = Lazy.force e32_rows in
  check_table ~golden:"table2.txt" (E.render_table2 rows);
  check_table ~golden:"table3.txt" (E.render_table3 rows)

let test_m7_tables_match_blessed () =
  let rows = Lazy.force m7_rows in
  check_table ~golden:"table2_m7.txt" (E.render_table2 rows);
  check_table ~golden:"table3_m7.txt" (E.render_table3 rows)

let check_enclosure name (row : E.row) =
  let e = row.E.estimated and m = row.E.measured in
  check_bool (name ^ ": measured within estimated") true
    (e.E.lo <= m.E.lo && m.E.hi <= e.E.hi);
  check_bool (name ^ ": calculated within estimated") true
    (e.E.lo <= row.E.calculated.E.lo && row.E.calculated.E.hi <= e.E.hi)

let test_m7_enclosure_all_benchmarks () =
  (* the paper's 13 come from the cached table run; the 8 extended
     benchmarks are measured here, so all 21 cross the differential *)
  List.iter2
    (fun (b : Bspec.t) row -> check_enclosure ("m7 " ^ b.Bspec.name) row)
    Suite.all (Lazy.force m7_rows);
  List.iter
    (fun (b : Bspec.t) ->
      check_enclosure ("m7 " ^ b.Bspec.name) (E.run ~mach:Machine.m7 b))
    Suite.extended

let test_extended_e32_explicit_matches_default () =
  (* the extended set is not golden-pinned, so pin the e32 identity on it
     directly: explicit e32 rows equal the default rows *)
  List.iter
    (fun (b : Bspec.t) ->
      check_bool (b.Bspec.name ^ ": explicit e32 = default") true
        (E.run ~mach:Machine.e32 b = E.run b))
    Suite.extended

let test_m7_certify_gap_closed () =
  (* every suite benchmark under m7 must produce checker-valid duality
     certificates with a closed gap, same as the e32 pipeline *)
  List.iter
    (fun (b : Bspec.t) ->
      let spec = Bspec.spec ~mach:Machine.m7 b in
      let result = Ipet.Analysis.analyze ~certify:true spec in
      List.iter
        (fun (side, c) ->
          match (c : Ipet.Analysis.certificate option) with
          | None ->
            Alcotest.failf "%s: no %s certificate under m7" b.Bspec.name side
          | Some c ->
            (match c.Ipet.Analysis.verdict with
             | Ipet_cert.Checker.Invalid reasons ->
               Alcotest.failf "%s: m7 %s certificate rejected: %s"
                 b.Bspec.name side (String.concat "; " reasons)
             | Ipet_cert.Checker.Valid _ ->
               check_bool (b.Bspec.name ^ ": m7 " ^ side ^ " gap closed")
                 true
                 (Ipet_cert.Checker.gap_closed c.Ipet.Analysis.verdict)))
        [ ("wcet", result.Ipet.Analysis.wcet_cert);
          ("bcet", result.Ipet.Analysis.bcet_cert) ])
    Suite.all

let test_jobs_differential_both_machines () =
  (* analysis results are bit-identical at any job count, per machine *)
  let p1 = Ipet_par.Pool.create ~jobs:1 in
  let p4 = Ipet_par.Pool.create ~jobs:4 in
  List.iter
    (fun mach ->
      List.iter
        (fun name ->
          let b = Suite.find name in
          check_bool
            (Printf.sprintf "%s on %s: jobs 1 = jobs 4" name (Machine.id mach))
            true
            (E.run ~mach ~pool:p1 b = E.run ~mach ~pool:p4 b))
        [ "des"; "fft" ])
    Machine.all

let suite =
  suite
  @ [ ("machine of_string", `Quick, test_machine_of_string);
      ("e32 is the historical model", `Quick, test_e32_is_the_historical_model);
      ("m7 timings", `Quick, test_m7_timings);
      ("m7 prefetch buffer", `Quick, test_m7_prefetch_buffer);
      ("residency predicates", `Quick, test_resident_ok);
      ("machine stall tables", `Quick, test_machine_stall_tables);
      ("cost follows machine geometry", `Quick, test_cost_follows_machine_geometry);
      ("sim follows machine", `Quick, test_sim_follows_machine);
      ("e32 tables byte-identical to seed goldens", `Slow,
       test_e32_tables_byte_identical);
      ("m7 tables match blessed goldens", `Slow, test_m7_tables_match_blessed);
      ("m7 enclosure on all benchmarks", `Slow, test_m7_enclosure_all_benchmarks);
      ("extended set: explicit e32 = default", `Slow,
       test_extended_e32_explicit_matches_default);
      ("m7 certificates gap-closed", `Slow, test_m7_certify_gap_closed);
      ("jobs 1 vs 4 differential on both machines", `Slow,
       test_jobs_differential_both_machines) ]
