(* Golden-output tests for the paper's Tables II and III.

   The rendered tables are compared byte-for-byte against the checked-in
   files under [test/golden/]. When a legitimate change (a new benchmark,
   a cost-model fix) moves the numbers, regenerate the golden files from
   the repository root with

     dune exec test/bless.exe

   and review the diff like any other source change. *)

module E = Ipet_suite.Experiments

let rows = lazy (E.run_all ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let first_difference expected got =
  let n = min (String.length expected) (String.length got) in
  let rec go i line col =
    if i >= n then (line, col)
    else if expected.[i] <> got.[i] then (line, col)
    else if expected.[i] = '\n' then go (i + 1) (line + 1) 1
    else go (i + 1) line (col + 1)
  in
  go 0 1 1

(* [dune runtest] runs us in the test directory, [dune exec] wherever it
   was invoked; same dodge as [test_fuzz.corpus_dir] *)
let golden_dir () =
  if Sys.file_exists "golden" then "golden"
  else Filename.concat "test" "golden"

let check_golden ~golden render () =
  let path = Filename.concat (golden_dir ()) golden in
  let expected = read_file path in
  let got = render (Lazy.force rows) in
  if String.equal expected got then ()
  else begin
    let line, col = first_difference expected got in
    Alcotest.failf
      "%s differs from golden output (first difference at line %d, column \
       %d).@.--- expected ---@.%s@.--- got ---@.%s@.If the change is \
       intended, regenerate with: dune exec test/bless.exe"
      golden line col expected got
  end

let suite =
  [
    Alcotest.test_case "Table II matches golden output" `Slow
      (check_golden ~golden:"table2.txt" E.render_table2);
    Alcotest.test_case "Table III matches golden output" `Slow
      (check_golden ~golden:"table3.txt" E.render_table3);
  ]
