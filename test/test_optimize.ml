(* Optimizer and liveness tests: the passes must preserve semantics while
   shrinking the instruction stream, and the IPET analysis of optimized
   code must stay sound. *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Optimize = Ipet_lang.Optimize
module Interp = Ipet_sim.Interp
module P = Ipet_isa.Prog
module I = Ipet_isa.Instr
module V = Ipet_isa.Value
module Liveness = Ipet_cfg.Liveness

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let instr_count (f : P.func) =
  Array.fold_left (fun acc (b : P.block) -> acc + Array.length b.P.instrs) 0 f.P.blocks

let compile_pair src =
  let plain = Frontend.compile_string_exn src in
  let optimized = Frontend.compile_string_exn ~optimize:true src in
  (plain, optimized)

let run_f compiled args =
  let m =
    Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data
  in
  let result = Interp.call m "f" (List.map (fun i -> V.Vint i) args) in
  (result, Interp.instructions m)

(* --- liveness ------------------------------------------------------------- *)

let test_liveness_basic () =
  let compiled =
    Frontend.compile_string_exn
      "int f(int a) { int b; int c; b = a + 1; c = b * 2; return c; }"
  in
  let func = P.find_func compiled.Compile.prog "f" in
  let live = Liveness.compute func in
  (* parameter (r0) is live at entry; nothing is live at exit *)
  check_bool "param live at entry" true (List.mem 0 (Liveness.live_in live ~block:0));
  check_int "nothing live out of the returning block" 0
    (List.length (Liveness.live_out live ~block:(Array.length func.P.blocks - 1)))

let test_liveness_across_loop () =
  let compiled =
    Frontend.compile_string_exn
      "int f(int n) { int i; int s; s = 0; \
       for (i = 0; i < n; i = i + 1) s = s + n; return s; }"
  in
  let func = P.find_func compiled.Compile.prog "f" in
  let live = Liveness.compute func in
  (* n (r0) is used inside the loop, so it is live into the loop header *)
  let cfg = Ipet_cfg.Cfg.of_func func in
  let dom = Ipet_cfg.Dominators.compute cfg in
  let l = List.hd (Ipet_cfg.Loops.detect cfg dom) in
  check_bool "n live at loop header" true
    (List.mem 0 (Liveness.live_in live ~block:l.Ipet_cfg.Loops.header))

(* --- individual passes ------------------------------------------------------ *)

let test_constant_folding () =
  let compiled =
    Frontend.compile_string_exn "int f() { int a; int b; a = 6; b = a * 7; return b; }"
  in
  let func = Optimize.func (P.find_func compiled.Compile.prog "f") in
  (* everything folds away to [return 42] (or a mov of it) *)
  check_bool "folded small" true (instr_count func <= 1);
  let has_mul =
    Array.exists
      (fun (b : P.block) ->
        Array.exists
          (function I.Alu (I.Mul, _, _, _) -> true | _ -> false)
          b.P.instrs)
      func.P.blocks
  in
  check_bool "multiply folded" false has_mul

let test_branch_simplification_prunes () =
  let compiled =
    Frontend.compile_string_exn
      "int f() { if (1 < 2) return 10; return 20; }"
  in
  let func = Optimize.func (P.find_func compiled.Compile.prog "f") in
  check_int "single block remains" 1 (Array.length func.P.blocks)

let test_dce_keeps_effects () =
  let compiled =
    Frontend.compile_string_exn
      "int g;\n\
       void effect(int v) { g = v; }\n\
       int f(int a) { int dead; dead = a * 3; effect(7); return a; }"
  in
  let func = Optimize.func (P.find_func compiled.Compile.prog "f") in
  let calls =
    Array.fold_left
      (fun acc (b : P.block) -> acc + List.length (P.calls_of_block b))
      0 func.P.blocks
  in
  check_int "call kept" 1 calls;
  let has_mul =
    Array.exists
      (fun (b : P.block) ->
        Array.exists
          (function I.Alu (I.Mul, _, _, _) -> true | _ -> false)
          b.P.instrs)
      func.P.blocks
  in
  check_bool "dead multiply removed" false has_mul

let test_shift_folding_matches_interpreter () =
  (* regression: fold_alu masked shift amounts with [land 62], so a folded
     [x << 1] disagreed with the interpreter's [x << 1] *)
  List.iter
    (fun (x, s) ->
      let src = Printf.sprintf "int f() { int a; a = %d; return a << %d; }" x s in
      let plain, optimized = compile_pair src in
      let r1, _ = run_f plain [] in
      let r2, _ = run_f optimized [] in
      check_bool (Printf.sprintf "fold %d << %d agrees" x s) true
        (match (r1, r2) with Some a, Some b -> V.equal a b | _ -> false);
      (match r2 with
       | Some v ->
         check_int (Printf.sprintf "fold %d << %d exact" x s)
           (let m = s land 63 in if m > 62 then 0 else x lsl m)
           (V.as_int v)
       | None -> Alcotest.fail "expected result"))
    [ (1, 1); (3, 5); (-7, 3); (9, 0); (5, 63); (5, 64) ];
  List.iter
    (fun (x, s) ->
      let src = Printf.sprintf "int f() { int a; a = %d; return a >> %d; }" x s in
      let plain, optimized = compile_pair src in
      let r1, _ = run_f plain [] in
      let r2, _ = run_f optimized [] in
      check_bool (Printf.sprintf "fold %d >> %d agrees" x s) true
        (match (r1, r2) with Some a, Some b -> V.equal a b | _ -> false))
    [ (256, 1); (-256, 3); (12345, 7); (-1, 63) ]

let test_division_by_zero_not_folded () =
  (* 1/0 must not be folded away or crash the optimizer *)
  let compiled =
    Frontend.compile_string_exn "int f() { int a; a = 0; return 1 / a; }"
  in
  let func = Optimize.func (P.find_func compiled.Compile.prog "f") in
  let has_div =
    Array.exists
      (fun (b : P.block) ->
        Array.exists
          (function I.Alu (I.Div, _, _, _) -> true | _ -> false)
          b.P.instrs)
      func.P.blocks
  in
  check_bool "division preserved" true has_div

(* --- end-to-end semantics ---------------------------------------------------- *)

let sample_programs =
  [ "int f(int a) { int s; int i; s = 0; \
     for (i = 0; i < 10; i = i + 1) { s = s + a * 2; } return s; }";
    "int g;\nint f(int a) { g = 2 * 3; if (g > a) return g; return a; }";
    "int buf[8];\nint f(int a) { int i; \
     for (i = 0; i < 8; i = i + 1) buf[i] = i * i; return buf[a & 7]; }";
    "int f(int a) { int x; int y; x = 5; y = x; x = y + a; return x - y; }" ]

let test_optimized_semantics_preserved () =
  List.iter
    (fun src ->
      let plain, optimized = compile_pair src in
      List.iter
        (fun arg ->
          let r1, n1 = run_f plain [ arg ] in
          let r2, n2 = run_f optimized [ arg ] in
          check_bool "same result" true
            (match (r1, r2) with
             | Some a, Some b -> V.equal a b
             | None, None -> true
             | Some _, None | None, Some _ -> false);
          check_bool "not slower (instructions)" true (n2 <= n1))
        [ 0; 1; 7; -3 ])
    sample_programs

let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves semantics on random programs"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range (-4) 12))
    (fun (seed, arg) ->
      let src = Test_cfg.random_program_src seed in
      let plain, optimized = compile_pair src in
      let r1, n1 = run_f plain [ arg ] in
      let r2, n2 = run_f optimized [ arg ] in
      (match (r1, r2) with
       | Some a, Some b -> V.equal a b
       | None, None -> true
       | Some _, None | None, Some _ -> false)
      && n2 <= n1)

let test_analysis_of_optimized_code_sound () =
  (* the analysis consumes the optimized program and must still enclose its
     simulated times *)
  let src =
    "int f(int a) { int s; int i; s = 0;\n\
     for (i = 0; i < 12; i = i + 1) {\n\
     if (a > i) s = s + 2 * 3; else s = s + 1; }\n\
     return s; }"
  in
  let optimized = Frontend.compile_string_exn ~optimize:true src in
  let ast, _ = Frontend.parse_and_check src in
  let loop_bounds = Ipet.Autobound.infer ast in
  let result =
    Ipet.Analysis.analyze
      (Ipet.Analysis.spec optimized.Compile.prog ~root:"f" ~loop_bounds)
  in
  List.iter
    (fun arg ->
      let m = Interp.create optimized.Compile.prog ~init:optimized.Compile.init_data in
      Interp.flush_cache m;
      ignore (Interp.call m "f" [ V.Vint arg ]);
      let t = Interp.cycles m in
      check_bool "bound holds on optimized code" true
        (result.Ipet.Analysis.bcet.Ipet.Analysis.cycles <= t
         && t <= result.Ipet.Analysis.wcet.Ipet.Analysis.cycles))
    [ 0; 6; 15 ]

let props = List.map QCheck_alcotest.to_alcotest [ prop_optimizer_preserves_semantics ]

let suite =
  [ ("liveness basics", `Quick, test_liveness_basic);
    ("liveness across loop", `Quick, test_liveness_across_loop);
    ("constant folding", `Quick, test_constant_folding);
    ("branch simplification prunes", `Quick, test_branch_simplification_prunes);
    ("dce keeps effects", `Quick, test_dce_keeps_effects);
    ("shift folding matches interpreter", `Quick, test_shift_folding_matches_interpreter);
    ("division by zero not folded", `Quick, test_division_by_zero_not_folded);
    ("optimized semantics preserved", `Quick, test_optimized_semantics_preserved);
    ("analysis of optimized code sound", `Quick, test_analysis_of_optimized_code_sound) ]
  @ props
