(* The determinism lockdown for the multicore engine: the pool itself, the
   analysis of every suite benchmark, the ILP branch-and-bound and the fuzz
   driver must all produce byte-identical output at any job count.

   On the OCaml 4 fallback (Par_compat.available = false) every pool is
   sequential, so these tests still run — they then check the degenerate
   equality 1-vs-1, keeping the suite green on both CI lanes. *)

module Pool = Ipet_par.Pool
module Pc = Ipet_par.Par_compat
module Analysis = Ipet.Analysis
module Report = Ipet.Report
module Suite = Ipet_suite.Suite
module Bspec = Ipet_suite.Bspec
module Driver = Ipet_fuzz.Driver
module Lp = Ipet_lp
module Rat = Ipet_num.Rat

let with_pool ~jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* {1 Pool unit tests} *)

let test_map_array_matches_sequential () =
  let input = Array.init 500 (fun i -> i) in
  let f i = (i * i) + 7 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          let got = Pool.map_array pool f input in
          Alcotest.(check (array int))
            (Printf.sprintf "map_array = Array.map at jobs %d" jobs)
            expected got))
    [ 1; 2; 4 ]

let test_map_list_matches_sequential () =
  let input = List.init 97 (fun i -> i) in
  let f i = string_of_int (i * 3) in
  let expected = List.map f input in
  with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list string))
        "map_list = List.map" expected
        (Pool.map_list pool f input))

let test_smallest_index_exception () =
  (* Several inputs raise; the exception surfaced must be the one a
     sequential [Array.map] would have raised: the smallest index. *)
  let f i = if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i) else i in
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          match Pool.map_array pool f (Array.init 100 (fun i -> i)) with
          | _ -> Alcotest.fail "expected an exception"
          | exception Failure msg ->
            Alcotest.(check string)
              (Printf.sprintf "smallest failing index at jobs %d" jobs)
              "boom 3" msg))
    [ 1; 2; 4 ]

let test_nested_fanout () =
  (* map inside map: the helping await must keep nested fan-out from
     deadlocking, and the result must still be positional. *)
  with_pool ~jobs:4 (fun pool ->
      let outer = Array.init 20 (fun i -> i) in
      let got =
        Pool.map_array pool
          (fun i ->
            Pool.map_array pool (fun j -> (i * 31) + j) (Array.init 20 Fun.id)
            |> Array.fold_left ( + ) 0)
          outer
      in
      let expected =
        Array.map
          (fun i ->
            Array.init 20 (fun j -> (i * 31) + j) |> Array.fold_left ( + ) 0)
          outer
      in
      Alcotest.(check (array int)) "nested fan-out" expected got)

let test_sequential_pool_is_sequential () =
  let pool = Pool.create ~jobs:1 in
  Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
  Alcotest.(check bool) "parallel" false (Pool.parallel pool);
  Pool.shutdown pool

let test_pool_stats_count_tasks () =
  with_pool ~jobs:4 (fun pool ->
      if Pool.parallel pool then begin
        ignore (Pool.map_array pool (fun i -> i + 1) (Array.init 256 Fun.id));
        let s = Pool.stats pool in
        Alcotest.(check bool) "tasks counted" true (s.Pool.tasks >= 256);
        Alcotest.(check bool) "steals non-negative" true (s.Pool.steals >= 0)
      end)

(* {1 Benchmark determinism differential}

   The observable report of every suite benchmark — bound summary plus the
   full solver statistics, which include lp_calls, nodes and pivots — must
   be byte-identical whatever the pool size. *)

let benchmarks = Suite.all @ Suite.extended

let render_report pool (b : Bspec.t) =
  let r = Analysis.analyze ~pool (Bspec.spec b) in
  Report.bound_summary r ^ "\n" ^ Report.lp_stats r

let render_suite pool =
  List.map (fun (b : Bspec.t) -> (b.Bspec.name, render_report pool b)) benchmarks

let check_same_renders ~what reference got =
  List.iter2
    (fun (name, ref_render) (name', render) ->
      Alcotest.(check string) (what ^ ": benchmark order " ^ name) name name';
      Alcotest.(check string) (what ^ ": report of " ^ name) ref_render render)
    reference got

let test_suite_determinism () =
  Alcotest.(check int) "the whole 21-benchmark suite" 21
    (List.length benchmarks);
  let reference = with_pool ~jobs:1 render_suite in
  List.iter
    (fun jobs ->
      let got = with_pool ~jobs render_suite in
      check_same_renders ~what:(Printf.sprintf "jobs 1 vs %d" jobs) reference
        got)
    [ 2; 4; 8 ]

let test_repeated_runs_stable () =
  (* Parallel scheduling is nondeterministic; the reports must not be.
     Five 4-job runs of the paper's own benchmark set, all identical. *)
  let render pool =
    List.map (fun (b : Bspec.t) -> (b.Bspec.name, render_report pool b))
      Suite.all
  in
  let first = with_pool ~jobs:4 render in
  for i = 2 to 5 do
    let again = with_pool ~jobs:4 render in
    check_same_renders ~what:(Printf.sprintf "4-job run %d vs run 1" i) first
      again
  done

(* {1 Concurrency smoke: Ilp.solve hammered from four domains}

   A small ILP whose root relaxation is fractional (so branch-and-bound
   actually branches) solved repeatedly from concurrent domains. Checks
   that every solve returns the right value and that the process-wide
   [Simplex.pivots] counter converges to exactly the sum of the per-solve
   pivot statistics — i.e. no update was lost to a race. *)

let branching_ilp =
  (* max x + y  s.t.  2x + 2y <= 5: LP optimum 5/2 (fractional), ILP
     optimum 2. *)
  let open Lp.Linexpr.Infix in
  Lp.Lp_problem.make Lp.Lp_problem.Maximize
    (v "x" + v "y")
    [ Lp.Lp_problem.le ((2 * v "x") + (2 * v "y")) (int 5) ]

let test_concurrent_ilp_solves () =
  let solves_per_domain = 25 in
  let before = Lp.Simplex.pivots () in
  let work () =
    let pivots = ref 0 in
    let pool = Pool.create ~jobs:1 in
    for _ = 1 to solves_per_domain do
      match Lp.Ilp.solve ~presolve:false ~pool branching_ilp with
      | Lp.Ilp.Optimal { value; stats; _ } ->
        if not (Rat.equal value (Rat.of_int 2)) then
          failwith "wrong ILP optimum under concurrency";
        pivots := !pivots + stats.Lp.Ilp.pivots
      | _ -> failwith "expected Optimal"
    done;
    Pool.shutdown pool;
    !pivots
  in
  let handles = List.init 4 (fun _ -> Pc.spawn work) in
  let per_domain = List.map Pc.join handles in
  let after = Lp.Simplex.pivots () in
  let expected_delta = List.fold_left ( + ) 0 per_domain in
  Alcotest.(check bool) "some pivots were performed" true (expected_delta > 0);
  Alcotest.(check int) "global pivot counter lost no update" expected_delta
    (after - before);
  (* stats are deterministic: every domain solved the same problem the
     same number of times, so all four sums agree *)
  (match per_domain with
   | first :: rest ->
     List.iter
       (fun p -> Alcotest.(check int) "per-domain pivot sums agree" first p)
       rest
   | [] -> assert false)

let test_ilp_parallel_stats_identical () =
  (* One solve, sequential vs parallel pool: stats must be bit-identical,
     not merely the value. *)
  let solve pool =
    match Lp.Ilp.solve ~presolve:false ~pool branching_ilp with
    | Lp.Ilp.Optimal { value; assignment; stats } ->
      ( Rat.to_string value,
        List.map (fun (x, q) -> (x, Rat.to_string q)) assignment,
        stats.Lp.Ilp.lp_calls,
        stats.Lp.Ilp.nodes,
        stats.Lp.Ilp.pivots,
        stats.Lp.Ilp.first_lp_integral )
    | _ -> Alcotest.fail "expected Optimal"
  in
  let reference = with_pool ~jobs:1 solve in
  List.iter
    (fun jobs ->
      let v0, a0, c0, n0, p0, i0 = reference in
      let v1, a1, c1, n1, p1, i1 = with_pool ~jobs solve in
      Alcotest.(check string) "value" v0 v1;
      Alcotest.(check (list (pair string string))) "assignment" a0 a1;
      Alcotest.(check int) "lp_calls" c0 c1;
      Alcotest.(check int) "nodes" n0 n1;
      Alcotest.(check int) "pivots" p0 p1;
      Alcotest.(check bool) "first_lp_integral" i0 i1)
    [ 2; 4 ]

(* {1 Fuzz driver determinism}

   Same seeds, different job counts: the outcome record and the whole log
   stream must match the sequential run. *)

let run_fuzz pool ~seed ~iters =
  let logs = ref [] in
  let outcome =
    Driver.run ~log:(fun l -> logs := l :: !logs) ~shrink:false ~pool ~seed
      ~iters ()
  in
  let report =
    Option.map
      (fun r -> Format.asprintf "%a" Driver.pp_report r)
      outcome.Driver.report
  in
  ( outcome.Driver.iters_run,
    outcome.Driver.passed,
    outcome.Driver.worst_wcet,
    report,
    List.rev !logs )

let test_fuzz_determinism () =
  let seed = 20260806 and iters = 30 in
  let i0, p0, w0, r0, l0 = with_pool ~jobs:1 (run_fuzz ~seed ~iters) in
  List.iter
    (fun jobs ->
      let i1, p1, w1, r1, l1 = with_pool ~jobs (run_fuzz ~seed ~iters) in
      let what = Printf.sprintf "fuzz jobs 1 vs %d" jobs in
      Alcotest.(check int) (what ^ ": iters_run") i0 i1;
      Alcotest.(check int) (what ^ ": passed") p0 p1;
      Alcotest.(check int) (what ^ ": worst_wcet") w0 w1;
      Alcotest.(check (option string)) (what ^ ": report") r0 r1;
      Alcotest.(check (list string)) (what ^ ": log stream") l0 l1)
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "map_array matches Array.map" `Quick
      test_map_array_matches_sequential;
    Alcotest.test_case "map_list matches List.map" `Quick
      test_map_list_matches_sequential;
    Alcotest.test_case "smallest-index exception" `Quick
      test_smallest_index_exception;
    Alcotest.test_case "nested fan-out does not deadlock" `Quick
      test_nested_fanout;
    Alcotest.test_case "jobs 1 pool is sequential" `Quick
      test_sequential_pool_is_sequential;
    Alcotest.test_case "pool stats count tasks" `Quick
      test_pool_stats_count_tasks;
    Alcotest.test_case "ILP stats identical at any job count" `Quick
      test_ilp_parallel_stats_identical;
    Alcotest.test_case "concurrent ILP solves keep counters exact" `Quick
      test_concurrent_ilp_solves;
    Alcotest.test_case "21-benchmark reports identical at jobs 1/2/4/8" `Slow
      test_suite_determinism;
    Alcotest.test_case "five 4-job runs are stable" `Slow
      test_repeated_runs_stable;
    Alcotest.test_case "fuzz outcome and log identical at any job count" `Slow
      test_fuzz_determinism;
  ]
