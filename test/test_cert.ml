(* Proof-carrying bounds: the trusted checker against hand-built LPs,
   QCheck mutation properties (a perturbed certificate is rejected),
   serialization round trips, and full-suite certificate validation at
   two pool sizes. *)

open Ipet_num
module L = Ipet_lp.Linexpr
module P = Ipet_lp.Lp_problem
module Ilp = Ipet_lp.Ilp
module Cert = Ipet_cert.Certificate
module Checker = Ipet_cert.Checker
module Certify = Ipet_cert.Certify
module A = Ipet.Analysis
module Pool = Ipet_par.Pool
module Bspec = Ipet_suite.Bspec
module J = Ipet_serve.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let valid = function Checker.Valid _ -> true | Checker.Invalid _ -> false

let reasons = function
  | Checker.Valid _ -> []
  | Checker.Invalid rs -> rs

let solve_and_certify problem =
  match Ilp.solve problem with
  | Ilp.Optimal { value; assignment; _ } ->
    (match Certify.certify problem ~witness:assignment ~bound:value with
     | Ok c -> c
     | Error m -> Alcotest.failf "certificate production failed: %s" m)
  | Ilp.Infeasible _ -> Alcotest.fail "unexpectedly infeasible"
  | Ilp.Unbounded _ -> Alcotest.fail "unexpectedly unbounded"

(* max x + 2y  s.t.  x <= 4, y <= 3, x + y <= 5: optimum 8 at (2, 3) *)
let textbook_max =
  let open L.Infix in
  P.make P.Maximize
    (v "x" + (2 * v "y"))
    [ P.le (v "x") (int 4) ~origin:"x cap";
      P.le (v "y") (int 3) ~origin:"y cap";
      P.le (v "x" + v "y") (int 5) ~origin:"sum cap" ]

let test_checker_accepts () =
  let c = solve_and_certify textbook_max in
  let verdict = Checker.check textbook_max c in
  check_bool "valid" true (valid verdict);
  check_bool "gap closed (LP optimum is integral)" true
    (Checker.gap_closed verdict);
  check_bool "bound is 8" true (Rat.equal c.Cert.bound (Rat.of_int 8));
  check_bool "dual bound matches" true
    (Rat.equal c.Cert.dual_bound (Rat.of_int 8));
  check_int "one dual per constraint" 3 (Array.length c.Cert.duals)

let test_checker_accepts_minimize () =
  let open L.Infix in
  (* min 3a + b  s.t.  a + b >= 4, a >= 1: optimum 6 at (1, 3) *)
  let p =
    P.make P.Minimize
      ((3 * v "a") + v "b")
      [ P.ge (v "a" + v "b") (int 4); P.ge (v "a") (int 1) ]
  in
  let c = solve_and_certify p in
  let verdict = Checker.check p c in
  check_bool "valid" true (valid verdict);
  check_bool "gap closed" true (Checker.gap_closed verdict);
  check_bool "bound is 6" true (Rat.equal c.Cert.bound (Rat.of_int 6))

let test_checker_rejects_tampering () =
  let c = solve_and_certify textbook_max in
  let rejected what c' =
    check_bool (what ^ " is rejected") false
      (valid (Checker.check textbook_max c'))
  in
  rejected "an inflated bound"
    { c with Cert.bound = Rat.add c.Cert.bound Rat.one };
  rejected "an inflated dual bound"
    { c with Cert.dual_bound = Rat.add c.Cert.dual_bound Rat.one };
  rejected "a perturbed dual"
    { c with
      Cert.duals =
        (let d = Array.copy c.Cert.duals in
         d.(0) <- Rat.add d.(0) Rat.one;
         d) };
  rejected "a truncated dual vector"
    { c with Cert.duals = Array.sub c.Cert.duals 0 2 };
  rejected "a perturbed witness count"
    { c with
      Cert.witness =
        List.map
          (fun (name, n) ->
            if name = "y" then (name, Rat.add n Rat.one) else (name, n))
          c.Cert.witness };
  rejected "a fractional witness"
    { c with
      Cert.witness =
        List.map (fun (n, x) -> (n, Rat.div x (Rat.of_int 2))) c.Cert.witness };
  rejected "the wrong problem digest" { c with Cert.digest = "deadbeef" };
  rejected "the wrong direction"
    { c with Cert.direction = P.Minimize };
  (* and a certificate for a different problem is refused outright *)
  let other =
    let open L.Infix in
    P.make P.Maximize (v "x") [ P.le (v "x") (int 7) ]
  in
  check_bool "certificate for another problem is rejected" false
    (valid (Checker.check other c));
  check_bool "rejections carry a reason" true
    (reasons (Checker.check other c) <> [])

let test_roundtrip () =
  let c = solve_and_certify textbook_max in
  (match Cert.of_string (Cert.to_string c) with
   | Error m -> Alcotest.failf "round trip failed: %s" m
   | Ok c' ->
     Alcotest.(check string)
       "serialization is stable" (Cert.to_string c) (Cert.to_string c');
     check_bool "round-tripped certificate still checks" true
       (valid (Checker.check textbook_max c')));
  List.iter
    (fun s ->
      check_bool
        (Printf.sprintf "of_string rejects %S" s)
        true
        (match Cert.of_string s with Error _ -> true | Ok _ -> false))
    [ ""; "garbage"; "ipet-cert v1"; Cert.to_string c ^ "\ntrailing" ]

let test_json_export () =
  let c = solve_and_certify textbook_max in
  match J.parse (Cert.to_json_string c) with
  | Error m -> Alcotest.failf "exported JSON does not parse: %s" m
  | Ok j ->
    check_bool "direction" true (J.member "direction" j = Some (J.Str "max"));
    check_bool "bound is a decimal string" true
      (J.member "bound" j = Some (J.Str "8"));
    check_bool "digest round-trips" true
      (J.member "digest" j = Some (J.Str c.Cert.digest));
    check_bool "witness is an object" true
      (match J.member "witness" j with Some (J.Obj _) -> true | _ -> false)

(* --- mutation properties -------------------------------------------------- *)

(* a random box-plus-knapsack family: max Σ c_i x_i  s.t.  x_i <= b_i,
   Σ x_i <= t, with c_i, b_i >= 1 — always feasible and bounded, every
   constraint with nonzero right-hand side, every variable in the
   objective, so any single perturbation below provably breaks a checker
   equation (witness objective, implied dual bound, or the digest) *)
let random_problem (nvars, caps, costs, slack) =
  let n = 1 + (nvars mod 5) in
  let cap i = 1 + (List.nth caps (i mod List.length caps) mod 9) in
  let cost i = 1 + (List.nth costs (i mod List.length costs) mod 9) in
  let idxs = List.init n Fun.id in
  let budget =
    1 + (slack mod List.fold_left (fun acc i -> acc + cap i) 0 idxs)
  in
  let x i = L.var (Printf.sprintf "x%d" i) in
  let open L.Infix in
  let total = List.fold_left (fun acc i -> acc + x i) L.zero idxs in
  P.make P.Maximize
    (List.fold_left (fun acc i -> acc + (cost i * x i)) L.zero idxs)
    (P.le total (int budget)
     :: List.map (fun i -> P.le (x i) (int (cap i))) idxs)

let family =
  QCheck.(
    quad (int_bound 1000)
      (list_of_size (Gen.return 5) (int_bound 1000))
      (list_of_size (Gen.return 5) (int_bound 1000))
      (int_bound 1000))

let prop_valid_then_mutated_rejected which mutate =
  QCheck.Test.make ~name:(Printf.sprintf "a perturbed %s is rejected" which)
    ~count:60
    QCheck.(pair family (pair (int_bound 100) (int_range 1 3)))
    (fun (seedcase, (pick, delta)) ->
      let p = random_problem seedcase in
      let c = solve_and_certify p in
      valid (Checker.check p c)
      && not (valid (mutate ~pick ~delta p c)))

let prop_mutated_dual =
  prop_valid_then_mutated_rejected "dual multiplier" (fun ~pick ~delta p c ->
    let d = Array.copy c.Cert.duals in
    let k = pick mod Array.length d in
    d.(k) <- Rat.add d.(k) (Rat.of_int delta);
    Checker.check p { c with Cert.duals = d })

let prop_mutated_witness =
  prop_valid_then_mutated_rejected "witness count" (fun ~pick ~delta p c ->
    (* the optimum saturates at least one variable above zero, so the
       witness is never empty; bump one entry *)
    let w = c.Cert.witness in
    let k = pick mod max 1 (List.length w) in
    Checker.check p
      { c with
        Cert.witness =
          List.mapi
            (fun i (name, n) ->
              if i = k then (name, Rat.add n (Rat.of_int delta))
              else (name, n))
            w })

let prop_mutated_coefficient =
  prop_valid_then_mutated_rejected "constraint coefficient"
    (fun ~pick ~delta p c ->
      (* perturbing the problem itself must flip the digest check: the
         certificate no longer speaks about the problem being checked *)
      let n = List.length p.P.constraints in
      let k = pick mod n in
      let open L.Infix in
      let constraints =
        List.mapi
          (fun i (cs : P.constr) ->
            if i = k then
              { cs with P.expr = cs.P.expr + int delta }
            else cs)
          p.P.constraints
      in
      Checker.check { p with P.constraints } c)

(* --- the whole suite, certified, at two pool sizes ------------------------ *)

let certified_suite jobs () =
  let pool = Pool.create ~jobs in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun (b : Bspec.t) ->
          let name = b.Bspec.name in
          let r = A.analyze ~pool ~certify:true (Bspec.spec b) in
          let side what cycles = function
            | None -> Alcotest.failf "%s: no %s certificate" name what
            | Some (c : A.certificate) ->
              check_bool
                (Printf.sprintf "%s: %s certificate valid" name what)
                true (valid c.A.verdict);
              check_bool
                (Printf.sprintf "%s: %s gap closed" name what)
                true
                (Checker.gap_closed c.A.verdict);
              check_bool
                (Printf.sprintf "%s: %s certificate certifies the bound" name
                   what)
                true
                (Rat.equal c.A.cert.Cert.bound (Rat.of_int cycles))
          in
          side "wcet" r.A.wcet.A.cycles r.A.wcet_cert;
          side "bcet" r.A.bcet.A.cycles r.A.bcet_cert)
        Ipet_suite.Suite.all)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mutated_dual; prop_mutated_witness; prop_mutated_coefficient ]

let suite =
  [ ("checker accepts a maximization certificate", `Quick,
     test_checker_accepts);
    ("checker accepts a minimization certificate", `Quick,
     test_checker_accepts_minimize);
    ("checker rejects every tampering", `Quick, test_checker_rejects_tampering);
    ("serialization round trip", `Quick, test_roundtrip);
    ("JSON export", `Quick, test_json_export);
    ("all 13 benchmarks certify at --jobs 1", `Slow, certified_suite 1);
    ("all 13 benchmarks certify at --jobs 4", `Slow, certified_suite 4) ]
  @ props
