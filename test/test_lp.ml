(* Tests for linear expressions, the exact simplex and branch-and-bound. *)

open Ipet_num
module L = Ipet_lp.Linexpr
module P = Ipet_lp.Lp_problem
module S = Ipet_lp.Simplex
module I = Ipet_lp.Ilp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rat_testable = Alcotest.testable Rat.pp Rat.equal

(* --- Linexpr ----------------------------------------------------------- *)

let test_linexpr_basic () =
  let open L.Infix in
  let e = v "x" + (2 * v "y") - int 3 in
  Alcotest.check rat_testable "coeff x" Rat.one (L.coeff e "x");
  Alcotest.check rat_testable "coeff y" (Rat.of_int 2) (L.coeff e "y");
  Alcotest.check rat_testable "coeff z" Rat.zero (L.coeff e "z");
  Alcotest.check rat_testable "const" (Rat.of_int (-3)) (L.constant e);
  check_bool "vars" true (L.vars e = [ "x"; "y" ])

let test_linexpr_cancel () =
  let open L.Infix in
  let e = v "x" + v "y" - v "x" in
  check_bool "x cancelled" true (L.vars e = [ "y" ]);
  check_bool "equal" true (L.equal e (v "y"))

let test_linexpr_eval () =
  let open L.Infix in
  let e = (3 * v "x") + (2 * v "y") + int 1 in
  let env = function "x" -> Rat.of_int 4 | _ -> Rat.of_int 5 in
  Alcotest.check rat_testable "eval" (Rat.of_int 23) (L.eval env e)

(* --- Simplex ----------------------------------------------------------- *)

let lp_max objective constraints = P.make P.Maximize objective constraints

let opt_value = function
  | S.Optimal { value; _ } -> value
  | S.Infeasible -> Alcotest.fail "unexpected infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_simplex_textbook () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6) *)
  let open L.Infix in
  let p =
    lp_max
      ((3 * v "x") + (5 * v "y"))
      [ P.le (v "x") (int 4);
        P.le (2 * v "y") (int 12);
        P.le ((3 * v "x") + (2 * v "y")) (int 18) ]
  in
  match S.solve p with
  | S.Optimal { value; assignment } ->
    Alcotest.check rat_testable "value" (Rat.of_int 36) value;
    let env = S.assignment_env assignment in
    Alcotest.check rat_testable "x" (Rat.of_int 2) (env "x");
    Alcotest.check rat_testable "y" (Rat.of_int 6) (env "y")
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality_and_ge () =
  (* max x + y s.t. x + y = 10, x >= 3, y >= 2 -> 10 *)
  let open L.Infix in
  let p =
    lp_max (v "x" + v "y")
      [ P.eq (v "x" + v "y") (int 10); P.ge (v "x") (int 3); P.ge (v "y") (int 2) ]
  in
  Alcotest.check rat_testable "value" (Rat.of_int 10) (opt_value (S.solve p))

let test_simplex_minimize () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4? min at (4,0): 8 vs (1,3): 11 -> 8 *)
  let open L.Infix in
  let p =
    P.make P.Minimize ((2 * v "x") + (3 * v "y"))
      [ P.ge (v "x" + v "y") (int 4); P.ge (v "x") (int 1) ]
  in
  match S.solve p with
  | S.Optimal { value; _ } ->
    Alcotest.check rat_testable "value" (Rat.of_int 8) value
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let open L.Infix in
  let p = lp_max (v "x") [ P.ge (v "x") (int 5); P.le (v "x") (int 3) ] in
  check_bool "infeasible" true (S.solve p = S.Infeasible)

let test_simplex_unbounded () =
  let open L.Infix in
  let p = lp_max (v "x") [ P.ge (v "x") (int 1) ] in
  check_bool "unbounded" true (S.solve p = S.Unbounded)

let test_simplex_fractional_vertex () =
  (* max x + y s.t. 2x + y <= 3, x + 2y <= 3 -> x=y=1, but with
     3x + y <= 4, x + 3y <= 4 -> vertex (1,1): 2; fractional example:
     max y s.t. 2y <= 3 -> 3/2 *)
  let open L.Infix in
  let p = lp_max (v "y") [ P.le (2 * v "y") (int 3) ] in
  Alcotest.check rat_testable "3/2" (Rat.of_ints 3 2) (opt_value (S.solve p))

let test_simplex_degenerate () =
  (* degenerate: redundant constraints meeting at the same vertex *)
  let open L.Infix in
  let p =
    lp_max (v "x" + v "y")
      [ P.le (v "x" + v "y") (int 2);
        P.le (v "x") (int 2);
        P.le (v "y") (int 2);
        P.le ((2 * v "x") + (2 * v "y")) (int 4) ]
  in
  Alcotest.check rat_testable "value" (Rat.of_int 2) (opt_value (S.solve p))

let test_simplex_equality_redundant () =
  let open L.Infix in
  let p =
    lp_max (v "x")
      [ P.eq (v "x" + v "y") (int 5);
        P.eq ((2 * v "x") + (2 * v "y")) (int 10) ]
  in
  Alcotest.check rat_testable "value" (Rat.of_int 5) (opt_value (S.solve p))

(* property: the simplex optimum dominates random feasible points *)
let prop_simplex_dominates =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let coeff = int_range 0 5 in
        let pt = pair (int_range 0 6) (int_range 0 6) in
        triple (pair coeff coeff) (list_size (int_range 1 4) (triple coeff coeff (int_range 1 40))) pt)
  in
  QCheck.Test.make ~name:"simplex optimum dominates feasible points" ~count:300 gen
    (fun ((cx, cy), rows, (px, py)) ->
      (* constraints a x + b y <= r; the point (px, py) is kept feasible by
         construction: we only keep rows it satisfies. *)
      let rows =
        List.filter (fun (a, b, r) -> (a * px) + (b * py) <= r) rows
      in
      QCheck.assume (rows <> []);
      let row_expr (a, b, r) =
        L.Infix.(P.le ((a * v "x") + (b * v "y")) (int r))
      in
      (* bound the region so the LP is never unbounded *)
      let bound = L.Infix.(P.le (v "x" + v "y") (int 100)) in
      let constraints = bound :: List.map row_expr rows in
      let p =
        lp_max L.Infix.((cx * v "x") + (cy * v "y")) constraints
      in
      match S.solve p with
      | S.Optimal { value; assignment } ->
        let env = S.assignment_env assignment in
        let point_value = Rat.of_int ((cx * px) + (cy * py)) in
        P.feasible env p && Rat.compare value point_value >= 0
      | S.Infeasible | S.Unbounded -> false)

(* --- ILP --------------------------------------------------------------- *)

let test_ilp_knapsack () =
  (* max 8a + 11b + 6c s.t. 5a + 7b + 4c <= 14, a,b,c <= 1 -> a=b=1: 19?
     check: a=1,b=1: weight 12, value 19; b=1,c=1: 11, 17; a=1,c=1: 9, 14;
     a=b=c=1 weight 16 > 14. optimum 19. LP relaxation is fractional. *)
  let open L.Infix in
  let p =
    lp_max
      ((8 * v "a") + (11 * v "b") + (6 * v "c"))
      [ P.le ((5 * v "a") + (7 * v "b") + (4 * v "c")) (int 14);
        P.le (v "a") (int 1); P.le (v "b") (int 1); P.le (v "c") (int 1) ]
  in
  match I.solve p with
  | I.Optimal { value; stats; _ } ->
    Alcotest.check rat_testable "value" (Rat.of_int 19) value;
    check_bool "root LP fractional" false stats.I.first_lp_integral;
    check_bool "several LP calls" true (stats.I.lp_calls > 1)
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_integral_root () =
  (* pure flow-style problem: root LP already integral *)
  let open L.Infix in
  let p =
    lp_max (v "x" + v "y")
      [ P.eq (v "x") (int 1); P.le (v "y") (10 * v "x") ]
  in
  match I.solve p with
  | I.Optimal { value; stats; _ } ->
    Alcotest.check rat_testable "value" (Rat.of_int 11) value;
    check_bool "first LP integral" true stats.I.first_lp_integral;
    check_int "one LP call" 1 stats.I.lp_calls
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_minimize () =
  let open L.Infix in
  (* min 3x + 2y s.t. 5x + 4y >= 17, integers: candidates x=1,y=3 -> 9;
     x=0,y=5 -> 10; x=2,y=2 -> 10; x=3,y=1 -> 11; optimum 9 *)
  let p =
    P.make P.Minimize ((3 * v "x") + (2 * v "y"))
      [ P.ge ((5 * v "x") + (4 * v "y")) (int 17) ]
  in
  match I.solve p with
  | I.Optimal { value; _ } ->
    Alcotest.check rat_testable "value" (Rat.of_int 9) value
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_infeasible () =
  let open L.Infix in
  (* 2 <= 2x <= 3 has no integer solution: x must be 1 <= x <= 3/2...
     actually x=1 gives 2, feasible. Use 3 <= 2x <= 3: x = 3/2 only. *)
  let p =
    lp_max (v "x") [ P.ge (2 * v "x") (int 3); P.le (2 * v "x") (int 3) ]
  in
  check_bool "infeasible" true
    (match I.solve p with I.Infeasible _ -> true | _ -> false)

let test_ilp_unbounded () =
  let open L.Infix in
  let p = lp_max (v "x") [ P.ge (v "x") (int 0) ] in
  check_bool "unbounded" true
    (match I.solve p with I.Unbounded _ -> true | _ -> false)

(* property: branch-and-bound agrees with brute force on small ILPs *)
let prop_ilp_matches_bruteforce =
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair
          (pair (int_range (-3) 5) (int_range (-3) 5))
          (list_size (int_range 1 3)
             (triple (int_range (-2) 4) (int_range (-2) 4) (int_range 0 25))))
  in
  QCheck.Test.make ~name:"ILP = brute force on boxed problems" ~count:150 gen
    (fun ((cx, cy), rows) ->
      let box = 6 in
      let row_expr (a, b, r) =
        L.Infix.(P.le ((a * v "x") + (b * v "y")) (int r))
      in
      let constraints =
        L.Infix.(P.le (v "x") (int box))
        :: L.Infix.(P.le (v "y") (int box))
        :: List.map row_expr rows
      in
      let p = lp_max L.Infix.((cx * v "x") + (cy * v "y")) constraints in
      let brute = ref None in
      for x = 0 to box do
        for y = 0 to box do
          if List.for_all (fun (a, b, r) -> (a * x) + (b * y) <= r) rows then begin
            let value = (cx * x) + (cy * y) in
            match !brute with
            | None -> brute := Some value
            | Some best -> if value > best then brute := Some value
          end
        done
      done;
      match (I.solve p, !brute) with
      | I.Optimal { value; _ }, Some best -> Rat.equal value (Rat.of_int best)
      | I.Infeasible _, None -> true
      | _ -> false)

(* --- LP-format export ------------------------------------------------------- *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_lp_format () =
  let open L.Infix in
  let p =
    lp_max ((3 * v "x:flow") + v "y@ctx")
      [ P.le (v "x:flow" + v "y@ctx") (int 7);
        P.ge (v "x:flow") (int 1);
        P.eq (v "y@ctx") (int 2) ]
  in
  let text = Ipet_lp.Lp_format.to_string ~name:"demo" p in
  check_bool "has maximize" true (contains ~needle:"Maximize" text);
  check_bool "has subject to" true (contains ~needle:"Subject To" text);
  check_bool "has general section" true (contains ~needle:"General" text);
  check_bool "has end" true (contains ~needle:"End" text);
  check_bool "aliases documented" true (contains ~needle:"v0 = x:flow" text);
  (* sanitized names only in the body: the raw ':' names appear in comments *)
  let body =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '\\')
    |> String.concat "\n"
  in
  check_bool "no raw names in body" false (contains ~needle:"x:flow" body)

let test_lp_format_minimize () =
  let open L.Infix in
  let p = P.make P.Minimize (v "a") [ P.ge (v "a") (int 3) ] in
  let text = Ipet_lp.Lp_format.to_string p in
  check_bool "has minimize" true (contains ~needle:"Minimize" text);
  check_bool "rhs rendered" true (contains ~needle:">= 3" text)

(* --- Revised: bad warm starts degrade to Stuck, never abort ------------- *)

module Sparse = Ipet_lp.Sparse
module R = Ipet_lp.Revised

(* branch-and-bound relies on this contract: any warm start the dual
   simplex cannot complete — iteration cap, singular or inconsistent
   snapshot — raises [Stuck] (which {!Ilp.solve} answers with a cold
   primal fallback) instead of asserting the process down *)
let test_dual_stuck_fallback () =
  let open L.Infix in
  let problem =
    lp_max (v "x" + v "y") [ P.le (v "x") (int 4); P.le (v "y") (int 3) ]
  in
  let inst = Sparse.build ~vars:(P.variables problem) problem in
  let cost =
    Array.map (fun v -> L.coeff problem.P.objective v) inst.Sparse.vars
  in
  let sol =
    match (R.solve_primal inst ~cost).R.verdict with
    | R.Optimal sol -> sol
    | _ -> Alcotest.fail "primal solve should be optimal"
  in
  let nstruct = inst.Sparse.nstruct in
  let lower = Array.make nstruct Rat.zero in
  let upper = Array.make nstruct None in
  let stuck f = match f () with exception R.Stuck -> true | _ -> false in
  (* tightened bounds force at least one pivot, so a zero cap must trip *)
  let upper_t = Array.map (fun _ -> Some (Rat.of_int 1)) upper in
  check_bool "iteration cap raises Stuck" true
    (stuck (fun () ->
       R.solve_dual ~max_iters:0 inst ~cost ~lower ~upper:upper_t
         ~warm:sol.R.snapshot));
  (* a snapshot whose basis repeats one column is singular *)
  let m = inst.Sparse.nrows in
  let degenerate =
    { R.sbasis = Array.make m sol.R.snapshot.R.sbasis.(0);
      sstatus = Array.copy sol.R.snapshot.R.sstatus }
  in
  check_bool "singular warm basis raises Stuck" true
    (stuck (fun () ->
       R.solve_dual inst ~cost ~lower ~upper ~warm:degenerate));
  (* and a sane warm start still re-optimizes under tightened bounds *)
  match
    (R.solve_dual inst ~cost ~lower ~upper:upper_t ~warm:sol.R.snapshot)
      .R.verdict
  with
  | R.Optimal s ->
    Alcotest.check rat_testable "tightened optimum" (Rat.of_int 2)
      s.R.value
  | _ -> Alcotest.fail "tightened re-optimization should stay optimal"

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simplex_dominates; prop_ilp_matches_bruteforce ]

let suite =
  [ ("linexpr basics", `Quick, test_linexpr_basic);
    ("linexpr cancellation", `Quick, test_linexpr_cancel);
    ("linexpr eval", `Quick, test_linexpr_eval);
    ("simplex textbook", `Quick, test_simplex_textbook);
    ("simplex equality and >=", `Quick, test_simplex_equality_and_ge);
    ("simplex minimize", `Quick, test_simplex_minimize);
    ("simplex infeasible", `Quick, test_simplex_infeasible);
    ("simplex unbounded", `Quick, test_simplex_unbounded);
    ("simplex fractional vertex", `Quick, test_simplex_fractional_vertex);
    ("simplex degenerate", `Quick, test_simplex_degenerate);
    ("simplex redundant equalities", `Quick, test_simplex_equality_redundant);
    ("ilp knapsack", `Quick, test_ilp_knapsack);
    ("ilp integral root", `Quick, test_ilp_integral_root);
    ("ilp minimize", `Quick, test_ilp_minimize);
    ("ilp infeasible", `Quick, test_ilp_infeasible);
    ("ilp unbounded", `Quick, test_ilp_unbounded);
    ("lp format export", `Quick, test_lp_format);
    ("lp format minimize", `Quick, test_lp_format_minimize);
    ("dual simplex: bad warm starts raise Stuck", `Quick,
     test_dual_stuck_fallback) ]
  @ props
