(* Aggregates every test suite; run with [dune runtest]. *)

let () =
  Alcotest.run "ipet"
    [ ("num", Test_num.suite);
      ("lp", Test_lp.suite);
      ("cert", Test_cert.suite);
      ("presolve", Test_presolve.suite);
      ("isa", Test_isa.suite);
      ("lang", Test_lang.suite);
      ("sim", Test_sim.suite);
      ("cfg", Test_cfg.suite);
      ("machine", Test_machine.suite);
      ("core", Test_core.suite);
      ("tools", Test_tools.suite);
      ("autobound", Test_autobound.suite);
      ("optimize", Test_optimize.suite);
      ("regalloc", Test_regalloc.suite);
      ("asm", Test_asm.suite);
      ("suite", Test_suite.suite);
      ("edge", Test_edge.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("par", Test_par.suite);
      ("solver_oracle", Test_solver_oracle.suite);
      ("serve", Test_serve.suite);
      ("golden", Test_golden.suite) ]
