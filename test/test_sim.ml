(* End-to-end simulator tests: compile MC programs and execute them. *)

module Frontend = Ipet_lang.Frontend
module Compile = Ipet_lang.Compile
module Interp = Ipet_sim.Interp
module V = Ipet_isa.Value
module Icache = Ipet_machine.Icache

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine ?cache src =
  let compiled = Frontend.compile_string_exn src in
  Interp.create ?cache compiled.Compile.prog ~init:compiled.Compile.init_data

let run_int ?cache src fname args =
  let m = machine ?cache src in
  match Interp.call m fname (List.map (fun i -> V.Vint i) args) with
  | Some (V.Vint i) -> (i, m)
  | Some (V.Vfloat _) -> Alcotest.fail "expected an int result"
  | None -> Alcotest.fail "expected a result"

let test_arith () =
  let r, _ = run_int "int f(int a, int b) { return a * b + a % b - (a / b); }"
      "f" [ 17; 5 ] in
  check_int "17*5+17%5-17/5" (85 + 2 - 3) r

let test_fib () =
  let src = "int fib(int n) { int a; int b; int i; int t; a = 0; b = 1; \
             for (i = 0; i < n; i = i + 1) { t = a + b; a = b; b = t; } return a; }" in
  let r, _ = run_int src "fib" [ 10 ] in
  check_int "fib 10" 55 r

let test_float_math () =
  let src = "float avg(int n) { float s; int i; s = 0.0; \
             for (i = 1; i <= n; i = i + 1) s = s + i; return s / n; }" in
  let m = machine src in
  match Interp.call m "avg" [ V.Vint 10 ] with
  | Some (V.Vfloat f) -> check_bool "avg 1..10 = 5.5" true (Float.equal f 5.5)
  | Some (V.Vint _) | None -> Alcotest.fail "expected float"

let test_arrays_and_globals () =
  let src = {|
    int data[8];
    int sum;
    void fill(int n) {
      int i;
      for (i = 0; i < n; i = i + 1) data[i] = i * i;
    }
    void total(int n) {
      int i;
      sum = 0;
      for (i = 0; i < n; i = i + 1) sum = sum + data[i];
    }
  |} in
  let m = machine src in
  ignore (Interp.call m "fill" [ V.Vint 8 ]);
  ignore (Interp.call m "total" [ V.Vint 8 ]);
  check_int "sum of squares" 140 (V.as_int (Interp.read_global m "sum" 0));
  check_int "data[3]" 9 (V.as_int (Interp.read_global m "data" 3))

let test_local_arrays () =
  let src = {|
    int rev3(int a, int b, int c) {
      int t[3];
      t[0] = a; t[1] = b; t[2] = c;
      return t[2] * 100 + t[1] * 10 + t[0];
    }
  |} in
  let r, _ = run_int src "rev3" [ 1; 2; 3 ] in
  check_int "reversed digits" 321 r

let test_global_initializers () =
  let src = {|
    int lut[5] = { 10, 20, 30, 40, 50 };
    float pi = 3.25;
    int get(int i) { return lut[i]; }
  |} in
  let m = machine src in
  check_int "lut[2]" 30
    (match Interp.call m "get" [ V.Vint 2 ] with
     | Some (V.Vint i) -> i
     | _ -> -1);
  check_bool "float global" true
    (Float.equal (V.as_float (Interp.read_global m "pi" 0)) 3.25)

let test_short_circuit_semantics () =
  (* b() must not run when a() is false: a() would trap on division by zero
     if evaluation were eager *)
  let src = {|
    int safe(int x) {
      if (x != 0 && 100 / x > 5) return 1;
      return 0;
    }
  |} in
  let r, _ = run_int src "safe" [ 0 ] in
  check_int "short circuit avoids division by zero" 0 r;
  let r, _ = run_int src "safe" [ 10 ] in
  check_int "10 -> 100/10=10>5" 1 r

let test_break_continue () =
  let src = {|
    int f(int n) {
      int i;
      int s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        if (i == 3) continue;
        if (i == 7) break;
        s = s + i;
      }
      return s;
    }
  |} in
  let r, _ = run_int src "f" [ 100 ] in
  check_int "0+1+2+4+5+6" 18 r

let test_calls_and_recursion_free () =
  let src = {|
    int square(int x) { return x * x; }
    int sumsq(int n) {
      int i; int s;
      s = 0;
      for (i = 1; i <= n; i = i + 1) s = s + square(i);
      return s;
    }
  |} in
  let r, m = run_int src "sumsq" [ 4 ] in
  check_int "1+4+9+16" 30 r;
  (* f-edge execution count: square called once per iteration *)
  let f = Ipet_isa.Prog.find_func (Interp.program m) "sumsq" in
  let body_with_call =
    Array.to_list f.Ipet_isa.Prog.blocks
    |> List.find (fun b -> Ipet_isa.Prog.calls_of_block b <> [])
  in
  check_int "call count" 4
    (Interp.call_count m ~caller:"sumsq" ~block:body_with_call.Ipet_isa.Prog.id
       ~occurrence:0)

let test_counters_match_semantics () =
  let src = "int f(int n) { int i; int s; s = 0; \
             while (i < n) { i = i + 1; s = s + i; } return s; }" in
  (* note: i starts uninitialized = 0 in our semantics *)
  let _, m = run_int src "f" [ 5 ] in
  let counts = Interp.block_counts m in
  (* header runs n+1 times, body n times *)
  let f = Ipet_isa.Prog.find_func (Interp.program m) "f" in
  let header =
    (* block with a Branch terminator *)
    Array.to_list f.Ipet_isa.Prog.blocks
    |> List.find (fun (b : Ipet_isa.Prog.block) ->
      match b.Ipet_isa.Prog.term with
      | Ipet_isa.Instr.Branch _ -> true
      | _ -> false)
  in
  check_int "header count" 6
    (Interp.block_count m ~func:"f" ~block:header.Ipet_isa.Prog.id);
  check_bool "entry executed once" true
    (List.assoc ("f", 0) counts = 1)

let test_shift_semantics () =
  (* regression: shift amounts were masked with [land 62], clearing bit 0,
     so x << 1 simulated as x << 0 *)
  let src = "int f(int x, int s) { return x << s; }" in
  let sr_src = "int f(int x, int s) { return x >> s; }" in
  List.iter
    (fun (x, s) ->
      let r, _ = run_int src "f" [ x; s ] in
      check_int (Printf.sprintf "%d << %d" x s) (V.wrap32 (x lsl s)) r)
    [ (1, 1); (3, 3); (5, 5); (1, 7); (123, 13); (-9, 1); (7, 0); (1, 31) ];
  (* 32-bit wrap: bit 31 is the sign *)
  let r, _ = run_int src "f" [ 1; 31 ] in
  check_int "1 << 31 is min_int32" V.min_int32 r;
  List.iter
    (fun (x, s) ->
      let r, _ = run_int sr_src "f" [ x; s ] in
      check_int (Printf.sprintf "%d >> %d" x s) (x asr s) r)
    [ (2, 1); (256, 3); (-256, 5); (12345, 7); (-1, 1); (7, 0) ];
  (* amounts are masked to 6 bits; 63 clamps (shl to 0, shr to the sign) *)
  let r, _ = run_int src "f" [ 5; 64 ] in
  check_int "5 << 64 wraps to << 0" 5 r;
  let r, _ = run_int src "f" [ 5; 63 ] in
  check_int "5 << 63 saturates to 0" 0 r;
  let r, _ = run_int sr_src "f" [ -5; 63 ] in
  check_int "-5 >> 63 keeps the sign" (-1) r

let test_division_by_zero_traps () =
  check_bool "trap" true
    (try ignore (run_int "int f(int a) { return 1 / a; }" "f" [ 0 ]); false
     with Interp.Runtime_error _ -> true)

let test_out_of_fuel () =
  let src = "int f() { while (1) { } return 0; }" in
  let compiled = Frontend.compile_string_exn src in
  let m = Interp.create ~fuel:1000 compiled.Compile.prog ~init:[] in
  check_bool "infinite loop detected" true
    (try ignore (Interp.call m "f" []); false with Interp.Out_of_fuel -> true)

let test_cycle_accounting () =
  let src = "int f(int n) { int i; int s; s = 0; \
             for (i = 0; i < n; i = i + 1) s = s + i; return s; }" in
  let _, m = run_int src "f" [ 100 ] in
  let cycles = Interp.cycles m in
  let instrs = Interp.instructions m in
  check_bool "cycles >= instructions" true (cycles >= instrs);
  check_bool "ran hundreds of instructions" true (instrs > 400);
  (* a tiny loop fits in the cache: mostly hits after the first iteration *)
  check_bool "warm loop mostly hits" true
    (Interp.cache_hits m > 10 * Interp.cache_misses m)

let test_cold_vs_warm_cache () =
  let src = "int f(int n) { int i; int s; s = 0; \
             for (i = 0; i < n; i = i + 1) s = s + i; return s; }" in
  let compiled = Frontend.compile_string_exn src in
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  ignore (Interp.call m "f" [ V.Vint 50 ]);
  let cold = Interp.cycles m in
  Interp.reset_stats m;  (* keep cache contents *)
  ignore (Interp.call m "f" [ V.Vint 50 ]);
  let warm = Interp.cycles m in
  check_bool "warm run is faster" true (warm < cold)

let test_flush_cache_restores_cold () =
  let src = "int f(int n) { int i; int s; s = 0; \
             for (i = 0; i < n; i = i + 1) s = s + i; return s; }" in
  let compiled = Frontend.compile_string_exn src in
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  ignore (Interp.call m "f" [ V.Vint 50 ]);
  let cold1 = Interp.cycles m in
  Interp.reset_stats m;
  Interp.flush_cache m;
  ignore (Interp.call m "f" [ V.Vint 50 ]);
  let cold2 = Interp.cycles m in
  check_int "flushed run repeats cold timing" cold1 cold2

let suite =
  [ ("integer arithmetic", `Quick, test_arith);
    ("fibonacci loop", `Quick, test_fib);
    ("float math", `Quick, test_float_math);
    ("global arrays", `Quick, test_arrays_and_globals);
    ("local arrays", `Quick, test_local_arrays);
    ("global initializers", `Quick, test_global_initializers);
    ("short-circuit semantics", `Quick, test_short_circuit_semantics);
    ("break and continue", `Quick, test_break_continue);
    ("function calls and f-edges", `Quick, test_calls_and_recursion_free);
    ("block counters", `Quick, test_counters_match_semantics);
    ("shift semantics (odd amounts)", `Quick, test_shift_semantics);
    ("division by zero traps", `Quick, test_division_by_zero_traps);
    ("out of fuel", `Quick, test_out_of_fuel);
    ("cycle accounting sanity", `Quick, test_cycle_accounting);
    ("cold vs warm cache", `Quick, test_cold_vs_warm_cache);
    ("flush restores cold timing", `Quick, test_flush_cache_restores_cold) ]

(* --- tracing and profiling ---------------------------------------------- *)

module Trace = Ipet_sim.Trace

let test_trace_events () =
  let src = "int f(int n) { int i; int s; s = 0; \
             for (i = 0; i < n; i = i + 1) s = s + i; return s; }" in
  let compiled = Frontend.compile_string_exn src in
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  let _, events = Trace.record m (fun () -> Interp.call m "f" [ V.Vint 5 ]) in
  (* every block execution produced exactly one event *)
  let total_counts =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Interp.block_counts m)
  in
  check_int "one event per block execution" total_counts (List.length events);
  (* timestamps are non-decreasing *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Trace.at_cycle <= b.Trace.at_cycle && monotone rest
    | [ _ ] | [] -> true
  in
  check_bool "monotone timestamps" true (monotone events)

let test_profile_accounts_all_cycles () =
  let src = {|
    int helper(int x) { int i; int s; s = 0;
      for (i = 0; i < 50; i = i + 1) s = s + x;
      return s; }
    int f(int n) { return helper(n) + helper(n + 1); }
  |} in
  let compiled = Frontend.compile_string_exn src in
  let m = Interp.create compiled.Compile.prog ~init:compiled.Compile.init_data in
  let _, rows = Trace.profile m (fun () -> Interp.call m "f" [ V.Vint 2 ]) in
  let attributed = List.fold_left (fun acc r -> acc + r.Trace.cycles) 0 rows in
  check_int "all cycles attributed" (Interp.cycles m) attributed;
  (* the helper's loop dominates the profile *)
  (match Trace.by_function rows with
   | (hottest, _) :: _ -> check_bool "helper is hottest" true (hottest = "helper")
   | [] -> Alcotest.fail "empty profile");
  (* rendering does not raise and mentions the hot function *)
  let text = Format.asprintf "%a" Trace.pp_profile rows in
  check_bool "render mentions helper" true
    (let nn = String.length "helper" in
     let rec go i = i + nn <= String.length text
                    && (String.sub text i nn = "helper" || go (i + 1)) in
     go 0)

let suite =
  suite
  @ [ ("trace events", `Quick, test_trace_events);
      ("profile accounts all cycles", `Quick, test_profile_accounts_all_cycles) ]

(* --- fast-path differential test ----------------------------------------
   The decoded interpreter's counters must be indistinguishable from a
   direct re-count of the execution.  [set_block_hook] reports every
   basic-block entry; since block bodies are straight-line, the event
   stream determines the whole control flow: after a block's call sites
   are exhausted the next event is a terminator successor, and before that
   it is unconditionally the next callee's entry block.  A shadow call
   stack replays that and recounts blocks, edges, calls and every
   context-qualified counter independently. *)

module P = Ipet_isa.Prog
module Bspec = Ipet_suite.Bspec

type shadow_frame = {
  sf_func : P.func;
  mutable sf_block : int;
  mutable sf_next_call : int;
  sf_path : Interp.site list;  (* root-first *)
}

type recount = {
  r_counts : (string * int, int) Hashtbl.t;
  r_edges : (string * int * int, int) Hashtbl.t;
  r_calls : (string * int * int, int) Hashtbl.t;
  r_ctx_counts : (Interp.site list * string * int, int) Hashtbl.t;
  r_ctx_edges : (Interp.site list * string * int * int, int) Hashtbl.t;
  r_ctx_calls : (Interp.site list * string * int * int, int) Hashtbl.t;
  r_ctx_entries : (Interp.site list * string, int) Hashtbl.t;
}

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let recount_run prog root hook_runner =
  let r =
    { r_counts = Hashtbl.create 64;
      r_edges = Hashtbl.create 64;
      r_calls = Hashtbl.create 16;
      r_ctx_counts = Hashtbl.create 64;
      r_ctx_edges = Hashtbl.create 64;
      r_ctx_calls = Hashtbl.create 16;
      r_ctx_entries = Hashtbl.create 16 }
  in
  let stack = ref [] in
  let enter func path =
    bump r.r_ctx_entries (path, func.P.name);
    stack := { sf_func = func; sf_block = 0; sf_next_call = 0; sf_path = path } :: !stack
  in
  let count_block f b path =
    bump r.r_counts (f, b);
    bump r.r_ctx_counts (path, f, b)
  in
  let on_event f b =
    let rec resolve () =
      match !stack with
      | [] ->
        Alcotest.(check string) "root entry function" root f;
        Alcotest.(check int) "root entry block" 0 b;
        enter (P.find_func prog root) [];
        count_block f b []
      | top :: rest ->
        let calls = P.calls_of_block top.sf_func.P.blocks.(top.sf_block) in
        if top.sf_next_call < List.length calls then begin
          let callee = List.nth calls top.sf_next_call in
          Alcotest.(check string) "call transition enters callee" callee f;
          Alcotest.(check int) "callee entered at block 0" 0 b;
          let occurrence = top.sf_next_call in
          let site = (top.sf_func.P.name, top.sf_block, occurrence) in
          bump r.r_calls site;
          bump r.r_ctx_calls
            (top.sf_path, top.sf_func.P.name, top.sf_block, occurrence);
          top.sf_next_call <- top.sf_next_call + 1;
          let path = top.sf_path @ [ site ] in
          enter (P.find_func prog callee) path;
          count_block f b path
        end
        else
          match top.sf_func.P.blocks.(top.sf_block).P.term with
          | Ipet_isa.Instr.Return _ ->
            stack := rest;
            resolve ()
          | Ipet_isa.Instr.Jump t ->
            Alcotest.(check string) "jump stays in function" top.sf_func.P.name f;
            Alcotest.(check int) "jump target" t b;
            bump r.r_edges (f, top.sf_block, b);
            bump r.r_ctx_edges (top.sf_path, f, top.sf_block, b);
            top.sf_block <- b;
            top.sf_next_call <- 0;
            count_block f b top.sf_path
          | Ipet_isa.Instr.Branch (_, t1, t2) ->
            Alcotest.(check string) "branch stays in function" top.sf_func.P.name f;
            check_bool "branch target" true (b = t1 || b = t2);
            bump r.r_edges (f, top.sf_block, b);
            bump r.r_ctx_edges (top.sf_path, f, top.sf_block, b);
            top.sf_block <- b;
            top.sf_next_call <- 0;
            count_block f b top.sf_path
    in
    resolve ()
  in
  hook_runner on_event;
  r

let assert_recount_matches name m prog r =
  (* plain block counts: the interpreter view must equal the recount exactly *)
  let recounted =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.r_counts [] |> List.sort compare
  in
  Alcotest.(check (list (pair (pair string int) int)))
    (name ^ ": block counts") recounted (Interp.block_counts m);
  (* every static edge and call site, executed or not *)
  Array.iter
    (fun (f : P.func) ->
      Array.iter
        (fun (b : P.block) ->
          let check_edge dst =
            let expected =
              Option.value ~default:0
                (Hashtbl.find_opt r.r_edges (f.P.name, b.P.id, dst))
            in
            check_int
              (Printf.sprintf "%s: edge %s B%d->B%d" name f.P.name b.P.id dst)
              expected
              (Interp.edge_count m ~func:f.P.name ~src:b.P.id ~dst)
          in
          (match b.P.term with
           | Ipet_isa.Instr.Jump t -> check_edge t
           | Ipet_isa.Instr.Branch (_, t1, t2) ->
             check_edge t1;
             if t2 <> t1 then check_edge t2
           | Ipet_isa.Instr.Return _ -> ());
          List.iteri
            (fun occurrence _callee ->
              let expected =
                Option.value ~default:0
                  (Hashtbl.find_opt r.r_calls (f.P.name, b.P.id, occurrence))
              in
              check_int
                (Printf.sprintf "%s: call %s B%d #%d" name f.P.name b.P.id
                   occurrence)
                expected
                (Interp.call_count m ~caller:f.P.name ~block:b.P.id ~occurrence))
            (P.calls_of_block b))
        f.P.blocks)
    prog.P.funcs;
  (* context-qualified counters at every path the recount observed *)
  Hashtbl.iter
    (fun (path, f, b) v ->
      check_int
        (Printf.sprintf "%s: ctx count %s B%d (depth %d)" name f b
           (List.length path))
        v
        (Interp.ctx_block_count m ~path ~func:f ~block:b))
    r.r_ctx_counts;
  Hashtbl.iter
    (fun (path, f, src, dst) v ->
      check_int
        (Printf.sprintf "%s: ctx edge %s B%d->B%d" name f src dst)
        v
        (Interp.ctx_edge_count m ~path ~func:f ~src ~dst))
    r.r_ctx_edges;
  Hashtbl.iter
    (fun (path, f, b, occurrence) v ->
      check_int
        (Printf.sprintf "%s: ctx call %s B%d #%d" name f b occurrence)
        v
        (Interp.ctx_call_count m ~path ~caller:f ~block:b ~occurrence))
    r.r_ctx_calls;
  Hashtbl.iter
    (fun (path, f) v ->
      check_int (Printf.sprintf "%s: ctx entries %s" name f) v
        (Interp.ctx_entry_count m ~path ~func:f))
    r.r_ctx_entries

let differential_bench (bench : Bspec.t) =
  let compiled = Bspec.compile bench in
  let prog = compiled.Ipet_lang.Compile.prog in
  List.iter
    (fun (d : Bspec.dataset) ->
      (* run 1: hooked, recounting independently *)
      let m =
        Interp.create prog ~init:compiled.Ipet_lang.Compile.init_data
      in
      d.Bspec.setup m;
      Interp.flush_cache m;
      let r =
        recount_run prog bench.Bspec.root (fun on_event ->
            Interp.set_block_hook m (fun f b _cycles -> on_event f b);
            ignore (Interp.call m bench.Bspec.root d.Bspec.args);
            Interp.clear_block_hook m)
      in
      assert_recount_matches bench.Bspec.name m prog r;
      (* run 2: fresh machine, no hook — timing and cache statistics must
         not depend on observation *)
      let m2 =
        Interp.create prog ~init:compiled.Ipet_lang.Compile.init_data
      in
      d.Bspec.setup m2;
      Interp.flush_cache m2;
      ignore (Interp.call m2 bench.Bspec.root d.Bspec.args);
      check_int (bench.Bspec.name ^ ": cycles repeatable") (Interp.cycles m2)
        (Interp.cycles m);
      check_int (bench.Bspec.name ^ ": instructions repeatable")
        (Interp.instructions m2) (Interp.instructions m);
      check_int (bench.Bspec.name ^ ": cache hits repeatable")
        (Interp.cache_hits m2) (Interp.cache_hits m);
      check_int (bench.Bspec.name ^ ": cache misses repeatable")
        (Interp.cache_misses m2) (Interp.cache_misses m))
    bench.Bspec.worst_data

let differential_tests =
  List.map
    (fun (b : Bspec.t) ->
      (b.Bspec.name ^ " differential recount", `Slow,
       fun () -> differential_bench b))
    (Ipet_suite.Suite.all @ Ipet_suite.Suite.extended)

let suite = suite @ differential_tests
